"""One entry point per figure/table of the paper's evaluation (Section 6-7).

Every figure is a :class:`~repro.experiments.specs.FigureSpec` in
:data:`FIGURE_SPECS` — a declarative (dataset, grids, analyzer) triple the
generic :func:`~repro.experiments.specs.run_spec` driver executes through
the sweep-plan layer.  The module-level functions (``fig2`` ... ``fig15``,
``redtree_failures``) are thin wrappers with the historical keyword
signature; :func:`run_figure` accepts either that signature or a
:class:`~repro.experiments.specs.RunContext`.

Every function returns a :class:`FigureResult` whose ``series`` attribute
contains the same curves as the corresponding figure of the paper (with the
assembly-tree surrogate in place of the UF collection, see DESIGN.md), and
whose ``checks`` record the qualitative properties the paper reports (who
wins, where, by roughly how much).  The benchmark suite executes these
functions, prints the series and asserts the checks.

Figure map
----------
==========  ===========================================================
``fig2``    normalised makespan vs memory bound, assembly trees, p=8
``fig3``    speedup of MemBooking over Activation, assembly trees
``fig4``    fraction of available memory used, assembly trees
``fig5``    scheduling time vs tree size, assembly trees
``fig6``    scheduling time per node vs tree height
``fig7``    speedup vs tree height at memory factor 2
``fig8``    effect of the AO/EO choice (memPO/CP/OptSeq/perfPO)
``fig9``    normalised makespan for p in {2,4,8,16,32}, assembly trees
``fig10``   normalised makespan vs memory bound, synthetic trees
``fig11``   speedup of MemBooking over Activation, synthetic trees
``fig12``   fraction of available memory used, synthetic trees
``fig13``   scheduling time vs tree size, synthetic trees
``fig14``   effect of the AO/EO choice, synthetic trees
``fig15``   normalised makespan for p in {2,4,8,16,32}, synthetic trees
``lb_stats``        Section 6 statistics on the new lower bound
``redtree_failures`` Section 7.4: RedTree failures under tight memory
``ablation_dispatch``      ALAP dispatch to candidates vs strict Algorithm 3
``ablation_lazy_subtree``  optimised vs reference data structures (timing)
==========  ===========================================================
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..bounds import lower_bound_improvement_stats
from ..core.task_tree import TaskTree
from ..orders import minimum_memory_postorder, sequential_peak_memory
from ..schedulers.membooking import MemBookingReferenceScheduler, MemBookingScheduler
from ..workloads.datasets import WorkloadCache
from .config import DEFAULT_MEMORY_FACTORS
from .metrics import decile_band, mean, median, series_over, speedup_records
from .records import RecordTable, ResultCache
from .reporting import quantize_x
from .specs import (
    DatasetRef,
    FigureResult,
    FigureSpec,
    GridSpec,
    RunContext,
    load_dataset,
    run_spec,
)

__all__ = ["FigureResult", "FIGURES", "FIGURE_SPECS", "run_figure"]

Series = dict[str, list[tuple[float, float]]]


# --------------------------------------------------------------------------- #
# dataset helpers
# --------------------------------------------------------------------------- #
def _dataset(
    kind: str, scale: str, seed: int, workload_cache: WorkloadCache | None = None
) -> list[TaskTree]:
    """Generate (or load from the workload cache) one named dataset.

    Thin compatibility wrapper over
    :func:`~repro.experiments.specs.load_dataset` (the historical home of
    the helper; external callers and tests import it from here).
    """
    return load_dataset(kind, scale, seed, workload_cache)


def _series_value(series: Series, name: str, x: float) -> float:
    """The y value of ``series[name]`` at ``x``, NaN when absent.

    X values are matched through :func:`~repro.experiments.reporting.quantize_x`
    (12 significant digits): series x values reconstructed from float
    arithmetic (``0.1 + 0.2``-style noise) still match their nominal grid
    point instead of silently reading as NaN.
    """
    key = quantize_x(x)
    for px, py in series.get(name, []):
        if quantize_x(px) == key:
            return py
    return float("nan")


def _final_value(series: Series, name: str) -> float:
    points = series.get(name, [])
    return points[-1][1] if points else float("nan")


# --------------------------------------------------------------------------- #
# family analyzers (shared by the assembly and synthetic spec variants)
# --------------------------------------------------------------------------- #
def _analyze_makespan(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    config = spec.grids[0].value_config()
    series: Series = {}
    for scheduler in config.schedulers:
        series[scheduler] = series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            where={"scheduler": scheduler},
            min_completion=config.min_completion_fraction,
        )
    checks = _makespan_checks(series, config.memory_factors)
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=records,
    )


def _makespan_checks(series: Series, memory_factors: Sequence[float]) -> dict[str, bool]:
    """Qualitative properties of Figures 2 and 10."""
    checks: dict[str, bool] = {}
    # MemBooking is never worse (on average) than the two baselines wherever
    # both report a point.
    for baseline in ("Activation", "MemBookingRedTree"):
        comparable = [
            (x, y_mb)
            for x, y_mb in series.get("MemBooking", [])
            for x2, y_base in series.get(baseline, [])
            if quantize_x(x) == quantize_x(x2)
            and np.isfinite(y_mb)
            and np.isfinite(y_base)
            and y_mb > y_base * 1.02
        ]
        checks[f"membooking_not_worse_than_{baseline}"] = not comparable
    # MemBooking reports a point at the smallest factor (it always completes
    # at the minimum memory, Theorem 1).
    mb_xs = {quantize_x(x) for x, _ in series.get("MemBooking", [])}
    checks["membooking_covers_minimum_memory"] = quantize_x(min(memory_factors)) in mb_xs
    # With generous memory all heuristics converge close to the lower bound
    # regime (non-increasing trend for MemBooking).
    mb = series.get("MemBooking", [])
    checks["membooking_monotone_trend"] = all(
        mb[i + 1][1] <= mb[i][1] * 1.05 for i in range(len(mb) - 1)
    )
    checks["membooking_close_to_bound_with_memory"] = (
        _final_value(series, "MemBooking") <= 1.6 if mb else False
    )
    return checks


def _analyze_speedup(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    memory_factors = spec.grids[0].memory_factors
    speedups = speedup_records(records)
    series: Series = {"mean": [], "median": [], "decile_1": [], "decile_9": []}
    for factor in sorted(set(memory_factors)):
        values = [s["speedup"] for s in speedups if s["memory_factor"] == factor]
        if not values:
            continue
        low, high = decile_band(values)
        series["mean"].append((factor, mean(values)))
        series["median"].append((factor, median(values)))
        series["decile_1"].append((factor, low))
        series["decile_9"].append((factor, high))
    checks = {
        # The paper reports average speedups of roughly 1.25-1.45 around 2x
        # the minimum memory on its (much larger) assembly trees; on the
        # laptop-scale surrogate we require a measurable gain (>= 3%) under
        # memory pressure and no slowdown anywhere on average.
        "speedup_at_least_one_everywhere": all(y >= 0.99 for _, y in series["mean"]),
        "noticeable_gain_under_memory_pressure": any(
            y >= 1.03 for x, y in series["mean"] if x <= 3.0
        ),
        "speedup_shrinks_with_abundant_memory": (
            series["mean"][-1][1] <= max(y for _, y in series["mean"]) + 1e-9
            if series["mean"]
            else False
        ),
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=records,
    )


def _analyze_memory_fraction(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    config = spec.grids[0].value_config()
    series: Series = {}
    for scheduler in config.schedulers:
        series[scheduler] = series_over(
            records,
            "memory_factor",
            "memory_fraction",
            where={"scheduler": scheduler},
            min_completion=config.min_completion_fraction,
        )
    mb_curve = dict(series.get("MemBooking", []))
    act_curve = dict(series.get("Activation", []))
    shared = sorted(set(mb_curve) & set(act_curve))
    tight = [x for x in shared if x <= 3.0]
    checks = {
        # Under memory pressure MemBooking exploits a larger share of the
        # available memory than Activation (Figure 4 discussion).
        "membooking_uses_more_memory_when_tight": all(
            mb_curve[x] >= act_curve[x] - 0.02 for x in tight
        )
        and any(mb_curve[x] > act_curve[x] for x in tight),
        # The fraction of memory used decreases when memory gets abundant.
        "fraction_decreases_with_memory": all(
            mb_curve[a] >= mb_curve[b] - 0.05 for a, b in zip(shared, shared[1:])
        ),
        "fractions_are_valid": all(0.0 <= y <= 1.0 + 1e-9 for y in mb_curve.values()),
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=records,
    )


def _analyze_timing(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    config = spec.grids[0].value_config()
    x_key = spec.params["x_key"]
    y_key = spec.params["y_key"]
    series: Series = {}
    for scheduler in config.schedulers:
        mask = (records.column("scheduler") == scheduler) & records.column("completed")
        series[scheduler] = sorted(
            zip(
                records.column(x_key)[mask].astype(np.float64).tolist(),
                records.column(y_key)[mask].astype(np.float64).tolist(),
            )
        )
    mb_points = series.get("MemBooking", [])
    checks = {
        "timings_positive": all(y >= 0 for pts in series.values() for _, y in pts),
        "membooking_overhead_reported": len(mb_points) > 0,
        # Per-node overhead stays small (paper: < 1 ms per node even at
        # height 1e5 in C; we allow a generous Python budget of 10 ms/node).
        "per_node_overhead_small": all(
            (y / max(x, 1.0) if y_key == "scheduling_seconds" else y) < 1e-2
            for x, y in mb_points
        ),
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=x_key,
        y_label=y_key,
        series=series,
        checks=checks,
        records=records,
    )


#: The six (activation order, execution order) pairs of Section 7.3.1.
ORDER_COMBOS: tuple[tuple[str, str], ...] = (
    ("memPO", "memPO"),
    ("memPO", "CP"),
    ("OptSeq", "CP"),
    ("OptSeq", "OptSeq"),
    ("perfPO", "CP"),
    ("perfPO", "perfPO"),
)


def _analyze_order_choice(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    series: Series = {}
    all_records: list[dict[str, Any]] = []
    for grid, records in zip(spec.grids, tables):
        config = grid.value_config()
        all_records.extend(records)
        series[f"{config.activation_order}/{config.execution_order}"] = series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            min_completion=config.min_completion_fraction,
        )
    # Spread between order choices at the largest factor must stay small
    # compared to the heuristic-vs-heuristic gaps (Section 7.3.1).
    finals = [points[-1][1] for points in series.values() if points]
    spread = (max(finals) - min(finals)) / min(finals) if finals else float("nan")
    cp_better = []
    for ao_name in ("memPO", "perfPO"):
        same = dict(series.get(f"{ao_name}/{ao_name}", []))
        with_cp = dict(series.get(f"{ao_name}/CP", []))
        shared = set(same) & set(with_cp)
        if shared:
            cp_better.append(
                mean(with_cp[x] for x in shared) <= mean(same[x] for x in shared) * 1.02
            )
    checks = {
        "order_choice_has_small_impact": bool(np.isfinite(spread) and spread < 0.15),
        "cp_execution_order_competitive": all(cp_better) if cp_better else False,
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=all_records,
    )


def _analyze_processor_sweep(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    config = spec.grids[0].value_config()
    processors = config.processors
    series: Series = {}
    for p in processors:
        for scheduler in config.schedulers:
            series[f"p={p}/{scheduler}"] = series_over(
                records,
                "memory_factor",
                "normalized_makespan",
                where={"scheduler": scheduler, "num_processors": p},
                min_completion=config.min_completion_fraction,
            )
    # The gain of MemBooking over Activation grows with the processor count.
    gains: dict[int, float] = {}
    for p in processors:
        mb = dict(series.get(f"p={p}/MemBooking", []))
        act = dict(series.get(f"p={p}/Activation", []))
        shared = [x for x in mb if x in act and x <= 3.0]
        if shared:
            gains[p] = mean(act[x] / mb[x] for x in shared if mb[x] > 0)
    sorted_p = sorted(gains)
    checks = {
        "gain_present_at_max_processors": gains.get(max(processors), 0.0) >= 1.0,
        "gain_grows_with_processors": (
            gains[sorted_p[-1]] >= gains[sorted_p[0]] - 0.02 if len(sorted_p) >= 2 else False
        ),
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=records,
    )


def _analyze_height_speedup(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    speedups = speedup_records(records)
    points = sorted((float(s["tree_height"]), float(s["speedup"])) for s in speedups)
    shallow = [y for x, y in points if x <= np.median([x for x, _ in points])]
    deep = [y for x, y in points if x > np.median([x for x, _ in points])]
    checks = {
        "no_slowdown_anywhere": all(y >= 0.99 for _, y in points),
        # Deep thin trees offer little parallelism: the best speedups are on
        # the shallow side (Figure 7 discussion).
        "best_speedups_on_shallow_trees": (max(shallow) >= max(deep) - 1e-9)
        if shallow and deep
        else False,
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series={"speedup": points},
        checks=checks,
        records=records,
    )


def _analyze_redtree(spec: FigureSpec, tables: list[RecordTable]) -> FigureResult:
    records = tables[0]
    config = spec.grids[0].value_config()
    scheduler_column = records.column("scheduler")
    factor_column = records.column("memory_factor")
    completed_column = records.column("completed")
    series: Series = {}
    for scheduler in config.schedulers:
        points = []
        for factor in config.memory_factors:
            bucket = (scheduler_column == scheduler) & (factor_column == factor)
            count = int(np.count_nonzero(bucket))
            failure_fraction = int(np.count_nonzero(bucket & ~completed_column)) / count
            points.append((factor, failure_fraction))
        series[scheduler] = points
    red = dict(series["MemBookingRedTree"])
    mb = dict(series["MemBooking"])
    checks = {
        # MemBooking never fails (Theorem 1).
        "membooking_never_fails": all(v == 0.0 for v in mb.values()),
        # The reduction-tree baseline fails on a substantial fraction of the
        # trees below 1.4x the minimum memory (the paper reports >= 33%).
        "redtree_fails_under_tight_memory": max(red[1.0], red[1.2]) >= 0.3,
        # Failures disappear once memory is abundant.
        "redtree_recovers_with_memory": red[5.0] <= red[1.0],
    }
    return FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        y_label=spec.y_label,
        series=series,
        checks=checks,
        records=records,
    )


# --------------------------------------------------------------------------- #
# text statistics and ablations (in-process custom figures)
# --------------------------------------------------------------------------- #
def lb_stats(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, fault_plan: str | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Section 6 statistics: how often the memory-aware bound improves the classical one.

    ``jobs`` and ``backend`` are accepted for interface uniformity with the
    sweep-based figures; the bound statistics are cheap and computed in-process.
    """
    _ = (jobs, backend, batch_size, native, fault_plan, cache)
    series: Series = {}
    checks: dict[str, bool] = {}
    for kind, tree_seed in (("assembly", seed), ("synthetic", seed + 1)):
        trees = _dataset(kind, scale, tree_seed, workload_cache)
        points_fraction = []
        points_gain = []
        for factor in (1.0, 2.0, 5.0):
            limits = []
            for tree in trees:
                order = minimum_memory_postorder(tree)
                limits.append(factor * sequential_peak_memory(tree, order, check=False))
            stats = lower_bound_improvement_stats(trees, 8, limits)
            points_fraction.append((factor, stats["improved_fraction"]))
            points_gain.append((factor, stats["average_improvement"]))
        series[f"{kind}/improved_fraction"] = points_fraction
        series[f"{kind}/average_improvement"] = points_gain
        checks[f"{kind}_bound_improves_under_tight_memory"] = points_fraction[0][1] > 0.0
        checks[f"{kind}_improvement_shrinks_with_memory"] = (
            points_fraction[0][1] >= points_fraction[-1][1]
        )
    return FigureResult(
        figure_id="lb_stats",
        title="Improvement of the memory-aware lower bound (Section 6)",
        x_label="normalized memory bound",
        y_label="fraction improved / average improvement",
        series=series,
        checks=checks,
    )


def ablation_dispatch(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, fault_plan: str | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Ablation: ALAP dispatch to computed candidates vs strict Algorithm 3 dispatch.

    ``jobs`` and ``backend`` are accepted for interface uniformity; the
    ablation drives hand-constructed scheduler variants and stays in-process.
    """
    _ = (jobs, backend, batch_size, native, fault_plan, cache)
    trees = _dataset("synthetic", scale, seed, workload_cache)
    factors = (1.0, 1.5, 2.0, 5.0)
    series: Series = {"alap_dispatch": [], "strict_dispatch": []}
    records: list[dict[str, Any]] = []
    for factor in factors:
        for label, scheduler in (
            ("alap_dispatch", MemBookingScheduler(dispatch_to_candidates=True)),
            ("strict_dispatch", MemBookingScheduler(dispatch_to_candidates=False)),
        ):
            values = []
            for index, tree in enumerate(trees):
                order = minimum_memory_postorder(tree)
                minimum = sequential_peak_memory(tree, order, check=False)
                result = scheduler.schedule(tree, 8, factor * minimum, ao=order, eo=order)
                values.append(result.makespan if result.completed else np.nan)
                records.append(
                    {
                        "variant": label,
                        "tree_index": index,
                        "memory_factor": factor,
                        "completed": result.completed,
                        "makespan": result.makespan,
                    }
                )
            series[label].append((factor, mean(values)))
    alap = dict(series["alap_dispatch"])
    strict = dict(series["strict_dispatch"])
    checks = {
        "both_variants_complete": all(np.isfinite(v) for v in list(alap.values()) + list(strict.values())),
        # The two dispatch policies only differ marginally: the ALAP extension
        # is a complexity optimisation, not a performance trick.
        "variants_within_five_percent": all(
            abs(alap[f] - strict[f]) <= 0.05 * strict[f] for f in factors
        ),
    }
    return FigureResult(
        figure_id="ablation_dispatch",
        title="Ablation: ALAP dispatch to candidates vs strict ACT/RUN dispatch",
        x_label="normalized memory bound",
        y_label="mean makespan",
        series=series,
        checks=checks,
        records=records,
    )


def ablation_lazy_subtree(scale: str = "small", seed: int = 99, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, fault_plan: str | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Ablation: optimised data structures vs the reference implementation (timing).

    Both implementations now share the heap-based ``ReadyQueue`` for their
    ready pool, so the remaining difference this ablation measures is the
    lazy ``BookedBySubtree`` initialisation plus the heap ``CAND`` structure
    versus the reference's linear candidate scan (the seed additionally
    differed on an O(n) ready-pool scan, since replaced in both).

    ``jobs`` and ``backend`` are accepted for interface uniformity; this
    ablation measures in-process scheduling time, which parallel workers
    would distort.
    """
    _ = (jobs, backend, batch_size, native, fault_plan, cache, workload_cache)
    sizes = (200, 500, 1000, 2000) if scale != "tiny" else (100, 200, 400)
    from ..workloads.synthetic import SyntheticTreeConfig, synthetic_tree

    series: Series = {"optimized": [], "reference": []}
    for size in sizes:
        tree = synthetic_tree(SyntheticTreeConfig(num_nodes=size), rng=seed)
        order = minimum_memory_postorder(tree)
        minimum = sequential_peak_memory(tree, order, check=False)
        for label, factory in (
            ("optimized", MemBookingScheduler),
            ("reference", MemBookingReferenceScheduler),
        ):
            # Min-of-5 per cell, like the spec-driven timing figures: the
            # committed artifact (and the not-slower check below) must not
            # ride on one-off scheduler/GC noise.
            seconds = min(
                factory()
                .schedule(tree, 8, 2.0 * minimum, ao=order, eo=order)
                .scheduling_seconds
                for _ in range(5)
            )
            series[label].append((float(size), seconds))
    optimized = dict(series["optimized"])
    reference = dict(series["reference"])
    largest = max(sizes)
    checks = {
        "timings_positive": all(v >= 0 for v in list(optimized.values()) + list(reference.values())),
        # The heap/counter implementation must not be slower than the
        # linear-scan reference on the largest instance.
        "optimized_not_slower_at_scale": optimized[largest] <= reference[largest] * 1.5,
    }
    return FigureResult(
        figure_id="ablation_lazy_subtree",
        title="Ablation: optimised vs reference MemBooking data structures",
        x_label="tree size",
        y_label="scheduling seconds",
        series=series,
        checks=checks,
    )


# --------------------------------------------------------------------------- #
# the figure specs
# --------------------------------------------------------------------------- #
_SYNTH_FACTORS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0)
_ASSEMBLY = DatasetRef.of("assembly")
_SYNTHETIC = DatasetRef.of("synthetic")
_HEIGHT = DatasetRef.of("height")

#: Declarative registry of every figure; executed by
#: :func:`~repro.experiments.specs.run_spec` (see CONTRIBUTING.md,
#: "Adding a figure").
FIGURE_SPECS: dict[str, FigureSpec] = {
    "fig2": FigureSpec(
        figure_id="fig2",
        title="Normalised makespan vs memory bound (assembly trees, p=8)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=(GridSpec(memory_factors=DEFAULT_MEMORY_FACTORS),),
        analyze=_analyze_makespan,
    ),
    "fig3": FigureSpec(
        figure_id="fig3",
        title="Speedup of MemBooking over Activation (assembly trees, p=8)",
        x_label="normalized memory bound",
        y_label="speedup",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=(
            GridSpec(
                memory_factors=DEFAULT_MEMORY_FACTORS,
                schedulers=("Activation", "MemBooking"),
            ),
        ),
        analyze=_analyze_speedup,
    ),
    "fig4": FigureSpec(
        figure_id="fig4",
        title="Fraction of available memory used (assembly trees, p=8)",
        x_label="normalized memory bound",
        y_label="peak resident memory / memory bound",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=(GridSpec(memory_factors=DEFAULT_MEMORY_FACTORS),),
        analyze=_analyze_memory_fraction,
    ),
    "fig5": FigureSpec(
        figure_id="fig5",
        title="Scheduling time vs tree size (assembly trees)",
        x_label="tree_size",
        y_label="scheduling_seconds",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=(GridSpec(memory_factors=(2.0,), timing_repetitions=5),),
        analyze=_analyze_timing,
        params={"x_key": "tree_size", "y_key": "scheduling_seconds"},
    ),
    "fig6": FigureSpec(
        figure_id="fig6",
        title="Per-node scheduling time vs tree height",
        x_label="tree_height",
        y_label="scheduling_seconds_per_node",
        seed=99,
        dataset=_HEIGHT,
        grids=(GridSpec(memory_factors=(2.0,), timing_repetitions=5),),
        analyze=_analyze_timing,
        params={"x_key": "tree_height", "y_key": "scheduling_seconds_per_node"},
    ),
    "fig7": FigureSpec(
        figure_id="fig7",
        title="Speedup of MemBooking vs tree height at memory factor 2",
        x_label="tree height",
        y_label="speedup over Activation",
        seed=2017,
        dataset=DatasetRef(parts=(("assembly", 0), ("height", 1))),
        grids=(
            GridSpec(memory_factors=(2.0,), schedulers=("Activation", "MemBooking")),
        ),
        analyze=_analyze_height_speedup,
    ),
    "fig8": FigureSpec(
        figure_id="fig8",
        title="Impact of the AO/EO choice on MemBooking (assembly trees, p=8)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=tuple(
            GridSpec(
                memory_factors=(1.5, 2.0, 5.0, 20.0),
                schedulers=("MemBooking",),
                activation_order=ao_name,
                execution_order=eo_name,
            )
            for ao_name, eo_name in ORDER_COMBOS
        ),
        analyze=_analyze_order_choice,
    ),
    "fig9": FigureSpec(
        figure_id="fig9",
        title="Normalised makespan for several processor counts (assembly trees)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=2017,
        dataset=_ASSEMBLY,
        grids=(
            GridSpec(memory_factors=(1.5, 2.0, 5.0, 20.0), processors=(2, 4, 8, 16, 32)),
        ),
        analyze=_analyze_processor_sweep,
    ),
    "fig10": FigureSpec(
        figure_id="fig10",
        title="Normalised makespan vs memory bound (synthetic trees, p=8)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(GridSpec(memory_factors=_SYNTH_FACTORS),),
        analyze=_analyze_makespan,
    ),
    "fig11": FigureSpec(
        figure_id="fig11",
        title="Speedup of MemBooking over Activation (synthetic trees, p=8)",
        x_label="normalized memory bound",
        y_label="speedup",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(
            GridSpec(
                memory_factors=_SYNTH_FACTORS, schedulers=("Activation", "MemBooking")
            ),
        ),
        analyze=_analyze_speedup,
    ),
    "fig12": FigureSpec(
        figure_id="fig12",
        title="Fraction of available memory used (synthetic trees, p=8)",
        x_label="normalized memory bound",
        y_label="peak resident memory / memory bound",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(GridSpec(memory_factors=_SYNTH_FACTORS),),
        analyze=_analyze_memory_fraction,
    ),
    "fig13": FigureSpec(
        figure_id="fig13",
        title="Scheduling time vs tree size (synthetic trees)",
        x_label="tree_size",
        y_label="scheduling_seconds",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(GridSpec(memory_factors=(2.0,), timing_repetitions=5),),
        analyze=_analyze_timing,
        params={"x_key": "tree_size", "y_key": "scheduling_seconds"},
    ),
    "fig14": FigureSpec(
        figure_id="fig14",
        title="Impact of the AO/EO choice on MemBooking (synthetic trees, p=8)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=tuple(
            GridSpec(
                memory_factors=(1.5, 2.0, 5.0, 10.0),
                schedulers=("MemBooking",),
                activation_order=ao_name,
                execution_order=eo_name,
            )
            for ao_name, eo_name in ORDER_COMBOS
        ),
        analyze=_analyze_order_choice,
    ),
    "fig15": FigureSpec(
        figure_id="fig15",
        title="Normalised makespan for several processor counts (synthetic trees)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(
            GridSpec(memory_factors=(1.5, 2.0, 5.0, 10.0), processors=(2, 4, 8, 16, 32)),
        ),
        analyze=_analyze_processor_sweep,
    ),
    "redtree_failures": FigureSpec(
        figure_id="redtree_failures",
        title="Fraction of synthetic trees MemBookingRedTree cannot schedule",
        x_label="normalized memory bound",
        y_label="failure fraction",
        seed=7011,
        dataset=_SYNTHETIC,
        grids=(
            GridSpec(
                memory_factors=(1.0, 1.2, 1.4, 2.0, 5.0),
                schedulers=("MemBookingRedTree", "MemBooking"),
                min_completion_fraction=0.0,
                validate=False,
            ),
        ),
        analyze=_analyze_redtree,
    ),
    "lb_stats": FigureSpec(
        figure_id="lb_stats",
        title="Improvement of the memory-aware lower bound (Section 6)",
        x_label="normalized memory bound",
        y_label="fraction improved / average improvement",
        seed=2017,
        custom=lb_stats,
    ),
    "ablation_dispatch": FigureSpec(
        figure_id="ablation_dispatch",
        title="Ablation: ALAP dispatch to candidates vs strict ACT/RUN dispatch",
        x_label="normalized memory bound",
        y_label="mean makespan",
        seed=7011,
        custom=ablation_dispatch,
    ),
    "ablation_lazy_subtree": FigureSpec(
        figure_id="ablation_lazy_subtree",
        title="Ablation: optimised vs reference MemBooking data structures",
        x_label="tree size",
        y_label="scheduling seconds",
        seed=99,
        custom=ablation_lazy_subtree,
    ),
}


# --------------------------------------------------------------------------- #
# legacy keyword entry points (``fig2(scale=..., cache=...)``)
# --------------------------------------------------------------------------- #
def _legacy_entry(figure_id: str, doc: str) -> Callable[..., FigureResult]:
    spec = FIGURE_SPECS[figure_id]

    def figure(
        scale: str = "small",
        seed: int | None = None,
        jobs: int = 1,
        backend: str = "auto",
        batch_size: int = 0,
        native: bool | None = None,
        fault_plan: str | None = None,
        cache: ResultCache | None = None,
        workload_cache: WorkloadCache | None = None,
    ) -> FigureResult:
        ctx = RunContext(
            scale=scale,
            jobs=jobs,
            backend=backend,
            batch_size=batch_size,
            native=native,
            fault_plan=fault_plan,
            cache=cache,
            workload_cache=workload_cache,
        )
        return run_spec(spec, ctx, seed=seed)

    figure.__name__ = figure_id
    figure.__qualname__ = figure_id
    figure.__doc__ = doc
    return figure


fig2 = _legacy_entry("fig2", "Figure 2: normalised makespan of the three heuristics, assembly trees.")
fig3 = _legacy_entry("fig3", "Figure 3: speedup of MemBooking over Activation, assembly trees.")
fig4 = _legacy_entry("fig4", "Figure 4: fraction of the available memory actually used, assembly trees.")
fig5 = _legacy_entry("fig5", "Figure 5: scheduling time as a function of the tree size, assembly trees.")
fig6 = _legacy_entry("fig6", "Figure 6: scheduling time per node as a function of the tree height.")
fig7 = _legacy_entry("fig7", "Figure 7: speedup over Activation as a function of the tree height (factor 2).")
fig8 = _legacy_entry("fig8", "Figure 8: impact of the activation/execution order choice, assembly trees.")
fig9 = _legacy_entry("fig9", "Figure 9: normalised makespan for p in {2, 4, 8, 16, 32}, assembly trees.")
fig10 = _legacy_entry("fig10", "Figure 10: normalised makespan of the three heuristics, synthetic trees.")
fig11 = _legacy_entry("fig11", "Figure 11: speedup of MemBooking over Activation, synthetic trees.")
fig12 = _legacy_entry("fig12", "Figure 12: fraction of the available memory actually used, synthetic trees.")
fig13 = _legacy_entry("fig13", "Figure 13: scheduling time as a function of the tree size, synthetic trees.")
fig14 = _legacy_entry("fig14", "Figure 14: impact of the activation/execution order choice, synthetic trees.")
fig15 = _legacy_entry("fig15", "Figure 15: normalised makespan for p in {2, 4, 8, 16, 32}, synthetic trees.")
redtree_failures = _legacy_entry(
    "redtree_failures",
    "Section 7.4: MemBookingRedTree cannot schedule many trees under tight memory.",
)


#: Registry used by the CLI and the benchmark suite (legacy keyword entry
#: points; prefer ``run_figure(figure_id, ctx)`` for new code).
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "lb_stats": lb_stats,
    "redtree_failures": redtree_failures,
    "ablation_dispatch": ablation_dispatch,
    "ablation_lazy_subtree": ablation_lazy_subtree,
}


def run_figure(
    figure_id: str, ctx: RunContext | None = None, **kwargs: Any
) -> FigureResult:
    """Run one figure by identifier (``"fig2"``, ..., ``"lb_stats"``).

    Either pass a :class:`~repro.experiments.specs.RunContext` (the spec
    driver executes it through the plan layer) or the historical keyword
    arguments (``scale=..., jobs=..., cache=...``), not both.
    """
    if figure_id not in FIGURE_SPECS:
        raise ValueError(f"unknown figure {figure_id!r}; available: {sorted(FIGURE_SPECS)}")
    if ctx is not None:
        if kwargs:
            raise TypeError("pass either a RunContext or legacy keyword arguments, not both")
        return run_spec(FIGURE_SPECS[figure_id], ctx)
    return FIGURES[figure_id](**kwargs)
