"""One entry point per figure/table of the paper's evaluation (Section 6-7).

Every function returns a :class:`FigureResult` whose ``series`` attribute
contains the same curves as the corresponding figure of the paper (with the
assembly-tree surrogate in place of the UF collection, see DESIGN.md), and
whose ``checks`` record the qualitative properties the paper reports (who
wins, where, by roughly how much).  The benchmark suite executes these
functions, prints the series and asserts the checks.

Figure map
----------
==========  ===========================================================
``fig2``    normalised makespan vs memory bound, assembly trees, p=8
``fig3``    speedup of MemBooking over Activation, assembly trees
``fig4``    fraction of available memory used, assembly trees
``fig5``    scheduling time vs tree size, assembly trees
``fig6``    scheduling time per node vs tree height
``fig7``    speedup vs tree height at memory factor 2
``fig8``    effect of the AO/EO choice (memPO/CP/OptSeq/perfPO)
``fig9``    normalised makespan for p in {2,4,8,16,32}, assembly trees
``fig10``   normalised makespan vs memory bound, synthetic trees
``fig11``   speedup of MemBooking over Activation, synthetic trees
``fig12``   fraction of available memory used, synthetic trees
``fig13``   scheduling time vs tree size, synthetic trees
``fig14``   effect of the AO/EO choice, synthetic trees
``fig15``   normalised makespan for p in {2,4,8,16,32}, synthetic trees
``lb_stats``        Section 6 statistics on the new lower bound
``redtree_failures`` Section 7.4: RedTree failures under tight memory
``ablation_dispatch``      ALAP dispatch to candidates vs strict Algorithm 3
``ablation_lazy_subtree``  optimised vs reference data structures (timing)
==========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..bounds import lower_bound_improvement_stats
from ..core.task_tree import TaskTree
from ..core.tree_metrics import height
from ..orders import minimum_memory_postorder, sequential_peak_memory
from ..schedulers.membooking import MemBookingReferenceScheduler, MemBookingScheduler
from ..workloads.datasets import (
    WorkloadCache,
    assembly_dataset,
    heavyleaf_dataset,
    height_study_dataset,
    synthetic_dataset,
)
from .config import DEFAULT_MEMORY_FACTORS, SweepConfig
from .metrics import decile_band, mean, median, series_over, speedup_records
from .records import RecordTable, ResultCache
from .reporting import format_series_table
from .runner import run_sweep

__all__ = ["FigureResult", "FIGURES", "run_figure"]

Series = dict[str, list[tuple[float, float]]]


@dataclass
class FigureResult:
    """Data reproduced for one figure/table of the paper."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Series
    checks: dict[str, bool] = field(default_factory=dict)
    notes: str = ""
    #: The raw sweep records behind the series: a columnar
    #: :class:`~repro.experiments.records.RecordTable` for single-sweep
    #: figures (iterable as dict records), a plain record list otherwise.
    records: "RecordTable | list[dict[str, Any]]" = field(default_factory=list)

    def as_text(self) -> str:
        """Human-readable rendering (table + check outcomes)."""
        lines = [
            f"== {self.figure_id}: {self.title} ==",
            format_series_table(self.series, x_label=self.x_label),
            f"(y axis: {self.y_label})",
        ]
        if self.notes:
            lines.append(self.notes)
        for name, passed in self.checks.items():
            lines.append(f"check[{name}]: {'PASS' if passed else 'FAIL'}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        """True when every qualitative check of the figure holds."""
        return all(self.checks.values())


# --------------------------------------------------------------------------- #
# dataset helpers
# --------------------------------------------------------------------------- #
def _dataset(
    kind: str, scale: str, seed: int, workload_cache: WorkloadCache | None = None
) -> list[TaskTree]:
    """Generate (or load from the workload cache) one named dataset.

    With a :class:`~repro.workloads.datasets.WorkloadCache` the trees come
    back as zero-copy views over a saved ``TreeStore`` arena keyed by
    (kind, scale, seed, generator version) — generation runs at most once
    per key, whichever figures ask for the dataset.  The arena also carries
    the workspace plane columns for the canonical (memPO, memPO) order pair
    every sweep figure defaults to, so a warm figure adopts its orders and
    workspaces from the arena instead of re-deriving them.
    """
    def generate() -> list[TaskTree]:
        if kind == "assembly":
            trees, _ = assembly_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "synthetic":
            trees, _ = synthetic_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "heavyleaf":
            trees, _ = heavyleaf_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "height":
            trees, _ = height_study_dataset(seed=seed)
            return trees
        raise ValueError(f"unknown dataset kind {kind!r}")

    if workload_cache is None:
        return generate()
    # The height-study dataset ignores the scale knob, so keying on it
    # would store identical arenas once per scale.
    cache_key = (kind, seed) if kind == "height" else (kind, scale, seed)
    return workload_cache.fetch(cache_key, generate, planes_orders=("memPO", "memPO"))


def _cached_sweep(
    trees: Sequence[TaskTree],
    config: SweepConfig,
    *,
    cache: ResultCache | None,
    dataset_key: Sequence[Any],
) -> RecordTable:
    """``run_sweep`` with an optional persistent result cache in front.

    ``dataset_key`` identifies the tree collection (kind, scale, seed —
    whatever regenerates it deterministically); together with the
    value-relevant ``config`` fields it keys the cache, so a re-run of the
    same figure at the same scale loads the saved
    :class:`~repro.experiments.records.RecordTable` instead of simulating.
    """
    if cache is None:
        return run_sweep(trees, config)
    key = cache.key(dataset_key, config)
    table = cache.get(key)
    if table is None:
        table = run_sweep(trees, config)
        cache.put(key, table)
    return table


def _series_value(series: Series, name: str, x: float) -> float:
    for px, py in series.get(name, []):
        if px == x:
            return py
    return float("nan")


def _final_value(series: Series, name: str) -> float:
    points = series.get(name, [])
    return points[-1][1] if points else float("nan")


# --------------------------------------------------------------------------- #
# generic figure builders (shared by the assembly and synthetic variants)
# --------------------------------------------------------------------------- #
def _makespan_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    memory_factors: Sequence[float],
    processors: Sequence[int] = (8,),
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    config = SweepConfig(
        memory_factors=tuple(memory_factors),
        processors=tuple(processors),
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
    )
    records = _cached_sweep(trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed))
    series: Series = {}
    for scheduler in config.schedulers:
        series[scheduler] = series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            where={"scheduler": scheduler},
            min_completion=config.min_completion_fraction,
        )
    checks = _makespan_checks(series, memory_factors)
    return FigureResult(
        figure_id=figure_id,
        title=f"Normalised makespan vs memory bound ({dataset_kind} trees, p={processors[0]})",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        series=series,
        checks=checks,
        records=records,
    )


def _makespan_checks(series: Series, memory_factors: Sequence[float]) -> dict[str, bool]:
    """Qualitative properties of Figures 2 and 10."""
    largest = max(memory_factors)
    checks: dict[str, bool] = {}
    # MemBooking is never worse (on average) than the two baselines wherever
    # both report a point.
    for baseline in ("Activation", "MemBookingRedTree"):
        comparable = [
            (x, y_mb)
            for x, y_mb in series.get("MemBooking", [])
            for x2, y_base in series.get(baseline, [])
            if x == x2 and np.isfinite(y_mb) and np.isfinite(y_base) and y_mb > y_base * 1.02
        ]
        checks[f"membooking_not_worse_than_{baseline}"] = not comparable
    # MemBooking reports a point at the smallest factor (it always completes
    # at the minimum memory, Theorem 1).
    mb_points = dict(series.get("MemBooking", []))
    checks["membooking_covers_minimum_memory"] = min(memory_factors) in mb_points
    # With generous memory all heuristics converge close to the lower bound
    # regime (non-increasing trend for MemBooking).
    mb = series.get("MemBooking", [])
    checks["membooking_monotone_trend"] = all(
        mb[i + 1][1] <= mb[i][1] * 1.05 for i in range(len(mb) - 1)
    )
    checks["membooking_close_to_bound_with_memory"] = (
        _final_value(series, "MemBooking") <= 1.6 if mb else False
    )
    _ = largest
    return checks


def _speedup_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    memory_factors: Sequence[float],
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    config = SweepConfig(
        schedulers=("Activation", "MemBooking"),
        memory_factors=tuple(memory_factors),
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
    )
    records = _cached_sweep(trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed))
    speedups = speedup_records(records)
    series: Series = {"mean": [], "median": [], "decile_1": [], "decile_9": []}
    for factor in sorted(set(memory_factors)):
        values = [s["speedup"] for s in speedups if s["memory_factor"] == factor]
        if not values:
            continue
        low, high = decile_band(values)
        series["mean"].append((factor, mean(values)))
        series["median"].append((factor, median(values)))
        series["decile_1"].append((factor, low))
        series["decile_9"].append((factor, high))
    checks = {
        # The paper reports average speedups of roughly 1.25-1.45 around 2x
        # the minimum memory on its (much larger) assembly trees; on the
        # laptop-scale surrogate we require a measurable gain (>= 3%) under
        # memory pressure and no slowdown anywhere on average.
        "speedup_at_least_one_everywhere": all(y >= 0.99 for _, y in series["mean"]),
        "noticeable_gain_under_memory_pressure": any(
            y >= 1.03 for x, y in series["mean"] if x <= 3.0
        ),
        "speedup_shrinks_with_abundant_memory": (
            series["mean"][-1][1] <= max(y for _, y in series["mean"]) + 1e-9
            if series["mean"]
            else False
        ),
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Speedup of MemBooking over Activation ({dataset_kind} trees, p=8)",
        x_label="normalized memory bound",
        y_label="speedup",
        series=series,
        checks=checks,
        records=records,
    )


def _memory_fraction_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    memory_factors: Sequence[float],
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    config = SweepConfig(memory_factors=tuple(memory_factors), jobs=jobs, backend=backend, batch_size=batch_size, native=native)
    records = _cached_sweep(trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed))
    series: Series = {}
    for scheduler in config.schedulers:
        series[scheduler] = series_over(
            records,
            "memory_factor",
            "memory_fraction",
            where={"scheduler": scheduler},
            min_completion=config.min_completion_fraction,
        )
    mb_curve = dict(series.get("MemBooking", []))
    act_curve = dict(series.get("Activation", []))
    shared = sorted(set(mb_curve) & set(act_curve))
    tight = [x for x in shared if x <= 3.0]
    checks = {
        # Under memory pressure MemBooking exploits a larger share of the
        # available memory than Activation (Figure 4 discussion).
        "membooking_uses_more_memory_when_tight": all(
            mb_curve[x] >= act_curve[x] - 0.02 for x in tight
        )
        and any(mb_curve[x] > act_curve[x] for x in tight),
        # The fraction of memory used decreases when memory gets abundant.
        "fraction_decreases_with_memory": all(
            mb_curve[a] >= mb_curve[b] - 0.05 for a, b in zip(shared, shared[1:])
        ),
        "fractions_are_valid": all(0.0 <= y <= 1.0 + 1e-9 for y in mb_curve.values()),
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Fraction of available memory used ({dataset_kind} trees, p=8)",
        x_label="normalized memory bound",
        y_label="peak resident memory / memory bound",
        series=series,
        checks=checks,
        records=records,
    )


def _timing_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    *,
    x_key: str,
    y_key: str,
    title: str,
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    config = SweepConfig(
        memory_factors=(2.0,), processors=(8,), jobs=jobs, backend=backend, batch_size=batch_size, native=native
    )
    records = _cached_sweep(trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed))
    series: Series = {}
    for scheduler in config.schedulers:
        mask = (records.column("scheduler") == scheduler) & records.column("completed")
        series[scheduler] = sorted(
            zip(
                records.column(x_key)[mask].astype(np.float64).tolist(),
                records.column(y_key)[mask].astype(np.float64).tolist(),
            )
        )
    mb_points = series.get("MemBooking", [])
    checks = {
        "timings_positive": all(y >= 0 for pts in series.values() for _, y in pts),
        "membooking_overhead_reported": len(mb_points) > 0,
        # Per-node overhead stays small (paper: < 1 ms per node even at
        # height 1e5 in C; we allow a generous Python budget of 10 ms/node).
        "per_node_overhead_small": all(
            (y / max(x, 1.0) if y_key == "scheduling_seconds" else y) < 1e-2
            for x, y in mb_points
        ),
    }
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_key,
        y_label=y_key,
        series=series,
        checks=checks,
        records=records,
    )


def _order_choice_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    memory_factors: Sequence[float],
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    combos = [
        ("memPO", "memPO"),
        ("memPO", "CP"),
        ("OptSeq", "CP"),
        ("OptSeq", "OptSeq"),
        ("perfPO", "CP"),
        ("perfPO", "perfPO"),
    ]
    series: Series = {}
    all_records: list[dict[str, Any]] = []
    for ao_name, eo_name in combos:
        config = SweepConfig(
            schedulers=("MemBooking",),
            memory_factors=tuple(memory_factors),
            activation_order=ao_name,
            execution_order=eo_name,
            jobs=jobs,
            backend=backend, batch_size=batch_size, native=native,
        )
        records = _cached_sweep(
            trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed)
        )
        all_records.extend(records)
        series[f"{ao_name}/{eo_name}"] = series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            min_completion=config.min_completion_fraction,
        )
    # Spread between order choices at the largest factor must stay small
    # compared to the heuristic-vs-heuristic gaps (Section 7.3.1).
    finals = [points[-1][1] for points in series.values() if points]
    spread = (max(finals) - min(finals)) / min(finals) if finals else float("nan")
    cp_better = []
    for ao_name in ("memPO", "perfPO"):
        same = dict(series.get(f"{ao_name}/{ao_name}", []))
        with_cp = dict(series.get(f"{ao_name}/CP", []))
        shared = set(same) & set(with_cp)
        if shared:
            cp_better.append(mean(with_cp[x] for x in shared) <= mean(same[x] for x in shared) * 1.02)
    checks = {
        "order_choice_has_small_impact": bool(np.isfinite(spread) and spread < 0.15),
        "cp_execution_order_competitive": all(cp_better) if cp_better else False,
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Impact of the AO/EO choice on MemBooking ({dataset_kind} trees, p=8)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        series=series,
        checks=checks,
        records=all_records,
    )


def _processor_sweep_figure(
    figure_id: str,
    dataset_kind: str,
    scale: str,
    seed: int,
    memory_factors: Sequence[float],
    processors: Sequence[int],
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> FigureResult:
    trees = _dataset(dataset_kind, scale, seed, workload_cache)
    config = SweepConfig(
        memory_factors=tuple(memory_factors),
        processors=tuple(processors),
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
    )
    records = _cached_sweep(trees, config, cache=cache, dataset_key=(dataset_kind, scale, seed))
    series: Series = {}
    for p in processors:
        for scheduler in config.schedulers:
            series[f"p={p}/{scheduler}"] = series_over(
                records,
                "memory_factor",
                "normalized_makespan",
                where={"scheduler": scheduler, "num_processors": p},
                min_completion=config.min_completion_fraction,
            )
    # The gain of MemBooking over Activation grows with the processor count.
    gains: dict[int, float] = {}
    for p in processors:
        mb = dict(series.get(f"p={p}/MemBooking", []))
        act = dict(series.get(f"p={p}/Activation", []))
        shared = [x for x in mb if x in act and x <= 3.0]
        if shared:
            gains[p] = mean(act[x] / mb[x] for x in shared if mb[x] > 0)
    sorted_p = sorted(gains)
    checks = {
        "gain_present_at_max_processors": gains.get(max(processors), 0.0) >= 1.0,
        "gain_grows_with_processors": (
            gains[sorted_p[-1]] >= gains[sorted_p[0]] - 0.02 if len(sorted_p) >= 2 else False
        ),
    }
    return FigureResult(
        figure_id=figure_id,
        title=f"Normalised makespan for several processor counts ({dataset_kind} trees)",
        x_label="normalized memory bound",
        y_label="makespan / lower bound",
        series=series,
        checks=checks,
        records=records,
    )


# --------------------------------------------------------------------------- #
# assembly-tree figures (2-9)
# --------------------------------------------------------------------------- #
def fig2(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 2: normalised makespan of the three heuristics, assembly trees."""
    return _makespan_figure("fig2", "assembly", scale, seed, DEFAULT_MEMORY_FACTORS, jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig3(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 3: speedup of MemBooking over Activation, assembly trees."""
    return _speedup_figure("fig3", "assembly", scale, seed, DEFAULT_MEMORY_FACTORS, jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig4(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 4: fraction of the available memory actually used, assembly trees."""
    return _memory_fraction_figure("fig4", "assembly", scale, seed, DEFAULT_MEMORY_FACTORS, jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig5(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 5: scheduling time as a function of the tree size, assembly trees."""
    return _timing_figure(
        "fig5",
        "assembly",
        scale,
        seed,
        x_key="tree_size",
        y_key="scheduling_seconds",
        title="Scheduling time vs tree size (assembly trees)",
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
        cache=cache,
        workload_cache=workload_cache,
    )


def fig6(scale: str = "small", seed: int = 99, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 6: scheduling time per node as a function of the tree height."""
    return _timing_figure(
        "fig6",
        "height",
        scale,
        seed,
        x_key="tree_height",
        y_key="scheduling_seconds_per_node",
        title="Per-node scheduling time vs tree height",
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
        cache=cache,
        workload_cache=workload_cache,
    )


def fig7(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 7: speedup over Activation as a function of the tree height (factor 2)."""
    trees = _dataset("assembly", scale, seed, workload_cache) + _dataset(
        "height", scale, seed + 1, workload_cache
    )
    config = SweepConfig(
        schedulers=("Activation", "MemBooking"), memory_factors=(2.0,), jobs=jobs, backend=backend, batch_size=batch_size, native=native
    )
    records = _cached_sweep(
        trees, config, cache=cache, dataset_key=("assembly+height", scale, seed)
    )
    speedups = speedup_records(records)
    points = sorted((float(s["tree_height"]), float(s["speedup"])) for s in speedups)
    shallow = [y for x, y in points if x <= np.median([x for x, _ in points])]
    deep = [y for x, y in points if x > np.median([x for x, _ in points])]
    checks = {
        "no_slowdown_anywhere": all(y >= 0.99 for _, y in points),
        # Deep thin trees offer little parallelism: the best speedups are on
        # the shallow side (Figure 7 discussion).
        "best_speedups_on_shallow_trees": (max(shallow) >= max(deep) - 1e-9)
        if shallow and deep
        else False,
    }
    return FigureResult(
        figure_id="fig7",
        title="Speedup of MemBooking vs tree height at memory factor 2",
        x_label="tree height",
        y_label="speedup over Activation",
        series={"speedup": points},
        checks=checks,
        records=records,
    )


def fig8(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 8: impact of the activation/execution order choice, assembly trees."""
    return _order_choice_figure("fig8", "assembly", scale, seed, (1.5, 2.0, 5.0, 20.0), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig9(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 9: normalised makespan for p in {2, 4, 8, 16, 32}, assembly trees."""
    return _processor_sweep_figure(
        "fig9", "assembly", scale, seed, (1.5, 2.0, 5.0, 20.0), (2, 4, 8, 16, 32), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache
    )


# --------------------------------------------------------------------------- #
# synthetic-tree figures (10-15)
# --------------------------------------------------------------------------- #
def fig10(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 10: normalised makespan of the three heuristics, synthetic trees."""
    return _makespan_figure("fig10", "synthetic", scale, seed, (1.0, 1.5, 2.0, 3.0, 5.0, 10.0), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig11(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 11: speedup of MemBooking over Activation, synthetic trees."""
    return _speedup_figure("fig11", "synthetic", scale, seed, (1.0, 1.5, 2.0, 3.0, 5.0, 10.0), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig12(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 12: fraction of the available memory actually used, synthetic trees."""
    return _memory_fraction_figure("fig12", "synthetic", scale, seed, (1.0, 1.5, 2.0, 3.0, 5.0, 10.0), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig13(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 13: scheduling time as a function of the tree size, synthetic trees."""
    return _timing_figure(
        "fig13",
        "synthetic",
        scale,
        seed,
        x_key="tree_size",
        y_key="scheduling_seconds",
        title="Scheduling time vs tree size (synthetic trees)",
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
        cache=cache,
        workload_cache=workload_cache,
    )


def fig14(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 14: impact of the activation/execution order choice, synthetic trees."""
    return _order_choice_figure("fig14", "synthetic", scale, seed, (1.5, 2.0, 5.0, 10.0), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache)


def fig15(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Figure 15: normalised makespan for p in {2, 4, 8, 16, 32}, synthetic trees."""
    return _processor_sweep_figure(
        "fig15", "synthetic", scale, seed, (1.5, 2.0, 5.0, 10.0), (2, 4, 8, 16, 32), jobs=jobs, backend=backend, batch_size=batch_size, native=native, cache=cache, workload_cache=workload_cache
    )


# --------------------------------------------------------------------------- #
# text statistics and ablations
# --------------------------------------------------------------------------- #
def lb_stats(scale: str = "small", seed: int = 2017, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Section 6 statistics: how often the memory-aware bound improves the classical one.

    ``jobs`` and ``backend`` are accepted for interface uniformity with the
    sweep-based figures; the bound statistics are cheap and computed in-process.
    """
    _ = (jobs, backend, batch_size, native, cache)
    series: Series = {}
    checks: dict[str, bool] = {}
    for kind, tree_seed in (("assembly", seed), ("synthetic", seed + 1)):
        trees = _dataset(kind, scale, tree_seed, workload_cache)
        points_fraction = []
        points_gain = []
        for factor in (1.0, 2.0, 5.0):
            limits = []
            for tree in trees:
                order = minimum_memory_postorder(tree)
                limits.append(factor * sequential_peak_memory(tree, order, check=False))
            stats = lower_bound_improvement_stats(trees, 8, limits)
            points_fraction.append((factor, stats["improved_fraction"]))
            points_gain.append((factor, stats["average_improvement"]))
        series[f"{kind}/improved_fraction"] = points_fraction
        series[f"{kind}/average_improvement"] = points_gain
        checks[f"{kind}_bound_improves_under_tight_memory"] = points_fraction[0][1] > 0.0
        checks[f"{kind}_improvement_shrinks_with_memory"] = (
            points_fraction[0][1] >= points_fraction[-1][1]
        )
    return FigureResult(
        figure_id="lb_stats",
        title="Improvement of the memory-aware lower bound (Section 6)",
        x_label="normalized memory bound",
        y_label="fraction improved / average improvement",
        series=series,
        checks=checks,
    )


def redtree_failures(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Section 7.4: MemBookingRedTree cannot schedule many trees under tight memory."""
    trees = _dataset("synthetic", scale, seed, workload_cache)
    config = SweepConfig(
        schedulers=("MemBookingRedTree", "MemBooking"),
        memory_factors=(1.0, 1.2, 1.4, 2.0, 5.0),
        min_completion_fraction=0.0,
        validate=False,
        jobs=jobs,
        backend=backend, batch_size=batch_size, native=native,
    )
    records = _cached_sweep(
        trees, config, cache=cache, dataset_key=("synthetic", scale, seed)
    )
    scheduler_column = records.column("scheduler")
    factor_column = records.column("memory_factor")
    completed_column = records.column("completed")
    series: Series = {}
    for scheduler in config.schedulers:
        points = []
        for factor in config.memory_factors:
            bucket = (scheduler_column == scheduler) & (factor_column == factor)
            count = int(np.count_nonzero(bucket))
            failure_fraction = int(np.count_nonzero(bucket & ~completed_column)) / count
            points.append((factor, failure_fraction))
        series[scheduler] = points
    red = dict(series["MemBookingRedTree"])
    mb = dict(series["MemBooking"])
    checks = {
        # MemBooking never fails (Theorem 1).
        "membooking_never_fails": all(v == 0.0 for v in mb.values()),
        # The reduction-tree baseline fails on a substantial fraction of the
        # trees below 1.4x the minimum memory (the paper reports >= 33%).
        "redtree_fails_under_tight_memory": max(red[1.0], red[1.2]) >= 0.3,
        # Failures disappear once memory is abundant.
        "redtree_recovers_with_memory": red[5.0] <= red[1.0],
    }
    return FigureResult(
        figure_id="redtree_failures",
        title="Fraction of synthetic trees MemBookingRedTree cannot schedule",
        x_label="normalized memory bound",
        y_label="failure fraction",
        series=series,
        checks=checks,
        records=records,
    )


def ablation_dispatch(scale: str = "small", seed: int = 7011, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Ablation: ALAP dispatch to computed candidates vs strict Algorithm 3 dispatch.

    ``jobs`` and ``backend`` are accepted for interface uniformity; the
    ablation drives hand-constructed scheduler variants and stays in-process.
    """
    _ = (jobs, backend, batch_size, native, cache)
    trees = _dataset("synthetic", scale, seed, workload_cache)
    factors = (1.0, 1.5, 2.0, 5.0)
    series: Series = {"alap_dispatch": [], "strict_dispatch": []}
    records: list[dict[str, Any]] = []
    for factor in factors:
        for label, scheduler in (
            ("alap_dispatch", MemBookingScheduler(dispatch_to_candidates=True)),
            ("strict_dispatch", MemBookingScheduler(dispatch_to_candidates=False)),
        ):
            values = []
            for index, tree in enumerate(trees):
                order = minimum_memory_postorder(tree)
                minimum = sequential_peak_memory(tree, order, check=False)
                result = scheduler.schedule(tree, 8, factor * minimum, ao=order, eo=order)
                values.append(result.makespan if result.completed else np.nan)
                records.append(
                    {
                        "variant": label,
                        "tree_index": index,
                        "memory_factor": factor,
                        "completed": result.completed,
                        "makespan": result.makespan,
                    }
                )
            series[label].append((factor, mean(values)))
    alap = dict(series["alap_dispatch"])
    strict = dict(series["strict_dispatch"])
    checks = {
        "both_variants_complete": all(np.isfinite(v) for v in list(alap.values()) + list(strict.values())),
        # The two dispatch policies only differ marginally: the ALAP extension
        # is a complexity optimisation, not a performance trick.
        "variants_within_five_percent": all(
            abs(alap[f] - strict[f]) <= 0.05 * strict[f] for f in factors
        ),
    }
    return FigureResult(
        figure_id="ablation_dispatch",
        title="Ablation: ALAP dispatch to candidates vs strict ACT/RUN dispatch",
        x_label="normalized memory bound",
        y_label="mean makespan",
        series=series,
        checks=checks,
        records=records,
    )


def ablation_lazy_subtree(scale: str = "small", seed: int = 99, jobs: int = 1, backend: str = "auto", batch_size: int = 0, native: bool | None = None, cache: ResultCache | None = None, workload_cache: WorkloadCache | None = None) -> FigureResult:
    """Ablation: optimised data structures vs the reference implementation (timing).

    Both implementations now share the heap-based ``ReadyQueue`` for their
    ready pool, so the remaining difference this ablation measures is the
    lazy ``BookedBySubtree`` initialisation plus the heap ``CAND`` structure
    versus the reference's linear candidate scan (the seed additionally
    differed on an O(n) ready-pool scan, since replaced in both).

    ``jobs`` and ``backend`` are accepted for interface uniformity; this
    ablation measures in-process scheduling time, which parallel workers
    would distort.
    """
    _ = (jobs, backend, batch_size, native, cache, workload_cache)
    sizes = (200, 500, 1000, 2000) if scale != "tiny" else (100, 200, 400)
    from ..workloads.synthetic import SyntheticTreeConfig, synthetic_tree

    series: Series = {"optimized": [], "reference": []}
    for size in sizes:
        tree = synthetic_tree(SyntheticTreeConfig(num_nodes=size), rng=seed)
        order = minimum_memory_postorder(tree)
        minimum = sequential_peak_memory(tree, order, check=False)
        for label, scheduler in (
            ("optimized", MemBookingScheduler()),
            ("reference", MemBookingReferenceScheduler()),
        ):
            result = scheduler.schedule(tree, 8, 2.0 * minimum, ao=order, eo=order)
            series[label].append((float(size), result.scheduling_seconds))
    optimized = dict(series["optimized"])
    reference = dict(series["reference"])
    largest = max(sizes)
    checks = {
        "timings_positive": all(v >= 0 for v in list(optimized.values()) + list(reference.values())),
        # The heap/counter implementation must not be slower than the
        # linear-scan reference on the largest instance.
        "optimized_not_slower_at_scale": optimized[largest] <= reference[largest] * 1.5,
    }
    return FigureResult(
        figure_id="ablation_lazy_subtree",
        title="Ablation: optimised vs reference MemBooking data structures",
        x_label="tree size",
        y_label="scheduling seconds",
        series=series,
        checks=checks,
    )


#: Registry used by the CLI and the benchmark suite.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "lb_stats": lb_stats,
    "redtree_failures": redtree_failures,
    "ablation_dispatch": ablation_dispatch,
    "ablation_lazy_subtree": ablation_lazy_subtree,
}


def run_figure(figure_id: str, **kwargs) -> FigureResult:
    """Run one figure by identifier (``"fig2"``, ..., ``"lb_stats"``)."""
    try:
        factory = FIGURES[figure_id]
    except KeyError:
        raise ValueError(f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}") from None
    return factory(**kwargs)
