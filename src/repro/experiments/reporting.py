"""Plain-text and CSV reporting of experiment results.

The benchmark harness is expected to *print* the same rows/series as the
paper's figures (absolute numbers will differ — the substrate is a simulator
— but the shape must match).  The helpers below render

* a :class:`FigureResult`-style series dictionary as an aligned text table
  (x values as rows, one column per series), and
* arbitrary record lists as CSV files for offline plotting.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_series_table", "format_records_table", "write_records_csv", "write_series_csv"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_series_table(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render ``{series name: [(x, y), ...]}`` as an aligned text table."""
    x_values = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series.keys())
    rows: list[list[str]] = []
    for x in x_values:
        row = [_format_value(x)]
        for name in series:
            row.append(_format_value(lookup[name].get(x, math.nan)))
        rows.append(row)

    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_records_table(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    *,
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render selected columns of a record list as an aligned text table."""
    rows = [[_format_value(record.get(column, "")) for column in columns] for record in records]
    if max_rows is not None and len(rows) > max_rows:
        rows = rows[:max_rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rows)) if rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def write_records_csv(records: Iterable[Mapping[str, Any]], path: str | Path) -> Path:
    """Write records to CSV (columns = union of keys, in first-seen order)."""
    records = list(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for record in records:
            writer.writerow({k: record.get(k, "") for k in columns})
    return path


def write_series_csv(
    series: Mapping[str, Sequence[tuple[float, float]]], path: str | Path, *, x_label: str = "x"
) -> Path:
    """Write ``{series name: [(x, y), ...]}`` to a wide-format CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    x_values = sorted({x for points in series.values() for x, _ in points})
    lookup = {name: {x: y for x, y in points} for name, points in series.items()}
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(series.keys()))
        for x in x_values:
            writer.writerow([x] + [lookup[name].get(x, "") for name in series])
    return path
