"""Plain-text and CSV reporting of experiment results.

The benchmark harness is expected to *print* the same rows/series as the
paper's figures (absolute numbers will differ — the substrate is a simulator
— but the shape must match).  The helpers below render

* a :class:`FigureResult`-style series dictionary as an aligned text table
  (x values as rows, one column per series), and
* arbitrary record lists as CSV files for offline plotting, with a
  **round-trippable cell encoding** (:func:`write_records_csv` /
  :func:`read_records_csv`): every ``int``/``float`` (NaN and ±inf
  included)/``bool``/``str``/``None`` value and every *missing* key survives
  a write/read cycle with its exact value and type.

Series tables and series CSVs match x values across series through one
shared quantisation (:func:`quantize_x`): two series whose x values differ
only by float noise land in the same row instead of silently splitting.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "format_series_table",
    "format_records_table",
    "write_records_csv",
    "read_records_csv",
    "write_series_csv",
    "quantize_x",
]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        # Non-finite values first: ±inf would otherwise fall through the
        # magnitude checks into the "%.3e" branch, and NaN into "%.3f".
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            # -0.0 passes `value == 0`; keep the sign instead of silently
            # flipping it to an unsigned "0".
            return "-0" if math.copysign(1.0, value) < 0 else "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def quantize_x(x: float) -> float:
    """Canonical x-axis key: round to 12 significant digits.

    Series produced by independent sweeps can carry x values that differ by
    float noise (e.g. ``2.0`` vs ``2.0000000000000004``); matching rows by
    exact float equality would silently split them.  All series table/CSV
    writers quantise through this one helper so x keys from different series
    collide exactly when they agree to 12 significant digits.
    """
    return float(f"{float(x):.12g}")


def _series_lookup(
    series: Mapping[str, Sequence[tuple[float, float]]]
) -> tuple[list[float], dict[str, dict[float, float]]]:
    """Quantised sorted x values and per-series ``{x: y}`` lookups."""
    x_values = sorted({quantize_x(x) for points in series.values() for x, _ in points})
    lookup = {
        name: {quantize_x(x): y for x, y in points} for name, points in series.items()
    }
    return x_values, lookup


def format_series_table(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render ``{series name: [(x, y), ...]}`` as an aligned text table."""
    x_values, lookup = _series_lookup(series)
    headers = [x_label] + list(series.keys())
    rows: list[list[str]] = []
    for x in x_values:
        row = [_format_value(x)]
        for name in series:
            row.append(_format_value(lookup[name].get(x, math.nan)))
        rows.append(row)

    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_records_table(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    *,
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render selected columns of a record list as an aligned text table."""
    rows = [[_format_value(record.get(column, "")) for column in columns] for record in records]
    if max_rows is not None and len(rows) > max_rows:
        rows = rows[:max_rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in rows)) if rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# round-trippable CSV cell encoding
# --------------------------------------------------------------------------- #
# One encoding for every cell, shared by the writer and the reader:
#
#   missing key -> ""            None  -> "null"
#   True/False  -> "true"/"false"
#   int         -> repr          float -> repr ("nan", "inf", "-inf" included)
#   str         -> as-is, EXCEPT strings the reader would mistake for one of
#                  the above (or for a number), which are JSON-quoted.
#
# ``repr`` of a float round-trips exactly (shortest-repr guarantee), and the
# quoting rule is self-consistent by construction: a string is quoted iff
# decoding its raw form would not return the same string.


def _decode_cell(cell: str) -> Any:
    """Inverse of :func:`_encode_cell`; ``""`` means "missing"."""
    if cell == "":
        return None  # callers treat "" as a missing key
    if cell.startswith('"'):
        # A JSON-quoted string from _encode_cell — but a raw value that
        # merely *starts* with a quote must come back unchanged.
        try:
            decoded = json.loads(cell)
        except json.JSONDecodeError:
            return cell
        return decoded if isinstance(decoded, str) else cell
    if cell == "null":
        return None
    if cell == "true":
        return True
    if cell == "false":
        return False
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    return cell


def _encode_cell(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    value = str(value)
    decoded = _decode_cell(value)
    if type(decoded) is not str or decoded != value:
        return json.dumps(value)
    return value


def write_records_csv(records: Iterable[Mapping[str, Any]], path: str | Path) -> Path:
    """Write records to CSV (columns = union of keys, in first-seen order).

    Cells use the round-trippable encoding documented above, so
    :func:`read_records_csv` recovers the exact values *and types* — a key
    missing from a record stays missing, ``None`` stays ``None``, ``nan`` /
    ``±inf`` stay floats and ``"true"``-the-string is distinguishable from
    ``True``-the-bool.
    """
    records = list(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for record in records:
            writer.writerow(
                [_encode_cell(record[k]) if k in record else "" for k in columns]
            )
    return path


def read_records_csv(path: str | Path) -> list[dict[str, Any]]:
    """Read a CSV written by :func:`write_records_csv` back into record dicts.

    The counterpart :func:`write_records_csv` was historically missing,
    which let the lossy encoding (missing key / ``nan`` / ``True`` all
    stringified ad hoc) go unnoticed; reading with this function recovers
    the original values, with keys that were missing in a record absent
    again rather than empty strings.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            columns = next(reader)
        except StopIteration:
            return []
        records: list[dict[str, Any]] = []
        for row in reader:
            record: dict[str, Any] = {}
            for key, cell in zip(columns, row):
                if cell == "":
                    continue  # missing key
                record[key] = _decode_cell(cell)
            records.append(record)
    return records


def write_series_csv(
    series: Mapping[str, Sequence[tuple[float, float]]], path: str | Path, *, x_label: str = "x"
) -> Path:
    """Write ``{series name: [(x, y), ...]}`` to a wide-format CSV.

    X values are matched across series through :func:`quantize_x` (the same
    helper :func:`format_series_table` uses), so float noise between sweeps
    cannot split one logical row into several.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    x_values, lookup = _series_lookup(series)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(series.keys()))
        for x in x_values:
            writer.writerow([x] + [lookup[name].get(x, "") for name in series])
    return path
