"""Declarative figure specifications and their generic execution driver.

Seventeen figure functions used to hand-thread the same eight execution
parameters (``scale, seed, jobs, backend, batch_size, native, cache,
workload_cache``) into near-identical bodies: generate a dataset, build one
or more :class:`~repro.experiments.config.SweepConfig` grids, sweep, reduce
records to series, attach checks.  This module factors that shape into
data:

* :class:`RunContext` — the eight execution knobs as one value, threaded
  through figures, :func:`~repro.experiments.suite.run_suite` and the CLI;
* :class:`GridSpec` — the value-relevant sweep axes of one grid (what used
  to be inlined ``SweepConfig(...)`` calls);
* :class:`DatasetRef` — a declarative dataset reference (one or more
  ``(kind, seed offset)`` parts, concatenated in order);
* :class:`FigureSpec` — one figure: id, labels, dataset, grids, and the
  ``analyze`` callable that turns the swept
  :class:`~repro.experiments.records.RecordTable` list into a
  :class:`FigureResult`;
* :func:`run_spec` — the single driver: loads the dataset, materialises a
  :class:`~repro.experiments.plan.SweepPlan` per grid, executes the cache
  misses through :func:`~repro.experiments.plan.execute_plan_cached` and
  hands the tables to the spec's analyzer.

The concrete specs (and their analyzers) live in
:mod:`repro.experiments.figures`; :func:`assemble_plans` /
:func:`plan_report` assemble the plans of several specs *without* executing
them — the substrate of ``--dry-run`` and the suite's cross-figure dedup
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..core.task_tree import TaskTree
from ..workloads.datasets import (
    WorkloadCache,
    assembly_dataset,
    heavyleaf_dataset,
    height_study_dataset,
    synthetic_dataset,
)
from .config import SweepConfig
from .plan import SweepPlan, execute_plan_cached
from .records import RecordTable
from .reporting import format_series_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .records import RowCache

__all__ = [
    "FigureResult",
    "RunContext",
    "GridSpec",
    "DatasetRef",
    "FigureSpec",
    "run_spec",
    "load_dataset",
    "assemble_plans",
    "plan_report",
    "format_plan_report",
]

Series = dict[str, list[tuple[float, float]]]


@dataclass
class FigureResult:
    """Data reproduced for one figure/table of the paper."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Series
    checks: dict[str, bool] = field(default_factory=dict)
    notes: str = ""
    #: The raw sweep records behind the series: a columnar
    #: :class:`~repro.experiments.records.RecordTable` for single-sweep
    #: figures (iterable as dict records), a plain record list otherwise.
    records: "RecordTable | list[dict[str, Any]]" = field(default_factory=list)

    def as_text(self) -> str:
        """Human-readable rendering (table + check outcomes)."""
        lines = [
            f"== {self.figure_id}: {self.title} ==",
            format_series_table(self.series, x_label=self.x_label),
            f"(y axis: {self.y_label})",
        ]
        if self.notes:
            lines.append(self.notes)
        for name, passed in self.checks.items():
            lines.append(f"check[{name}]: {'PASS' if passed else 'FAIL'}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        """True when every qualitative check of the figure holds."""
        return all(self.checks.values())


@dataclass(frozen=True)
class RunContext:
    """The execution knobs of a figure/suite run, as one value.

    Everything here changes *how* figures run, never the record values the
    analyzers see — which is exactly why none of it participates in the
    instance cache keys.
    """

    scale: str = "small"
    jobs: int = 1
    backend: str = "auto"
    batch_size: int = 0
    native: bool | None = None
    #: Fault-injection plan spec (``None`` defers to ``REPRO_FAULTS``); see
    #: :mod:`repro.resilience.faults`.  Execution-only like everything else
    #: here — recoverable faults never change record values.
    fault_plan: str | None = None
    #: Instance-row cache (:class:`~repro.experiments.records.ResultCache`
    #: or :class:`~repro.experiments.records.InMemoryRowCache`); ``None``
    #: disables caching entirely.
    cache: "RowCache | None" = None
    workload_cache: WorkloadCache | None = None
    #: Per-run memo of loaded datasets keyed by ``(kind, scale, seed)``:
    #: plan assembly (dry-run, suite accounting) and figure execution share
    #: one generation pass.  Intentionally mutable inside the frozen context.
    dataset_memo: dict[tuple[str, str, int], list[TaskTree]] = field(
        default_factory=dict, compare=False
    )


# --------------------------------------------------------------------------- #
# datasets
# --------------------------------------------------------------------------- #
def load_dataset(
    kind: str,
    scale: str,
    seed: int,
    workload_cache: WorkloadCache | None = None,
    memo: "dict[tuple[str, str, int], list[TaskTree]] | None" = None,
) -> list[TaskTree]:
    """Generate (or load from the workload cache) one named dataset.

    With a :class:`~repro.workloads.datasets.WorkloadCache` the trees come
    back as zero-copy views over a saved ``TreeStore`` arena keyed by
    (kind, scale, seed, generator version) — generation runs at most once
    per key, whichever figures ask for the dataset.  The arena also carries
    the workspace plane columns for the canonical (memPO, memPO) order pair
    every sweep figure defaults to, so a warm figure adopts its orders and
    workspaces from the arena instead of re-deriving them.  ``memo`` (the
    :attr:`RunContext.dataset_memo`) short-circuits repeated loads within
    one run.
    """
    memo_key = (kind, scale, seed)
    if memo is not None:
        cached = memo.get(memo_key)
        if cached is not None:
            return cached

    def generate() -> list[TaskTree]:
        if kind == "assembly":
            trees, _ = assembly_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "synthetic":
            trees, _ = synthetic_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "heavyleaf":
            trees, _ = heavyleaf_dataset(scale, seed=seed)  # type: ignore[arg-type]
            return trees
        if kind == "height":
            trees, _ = height_study_dataset(seed=seed)
            return trees
        raise ValueError(f"unknown dataset kind {kind!r}")

    if workload_cache is None:
        trees = generate()
    else:
        # The height-study dataset ignores the scale knob, so keying on it
        # would store identical arenas once per scale.
        cache_key = (kind, seed) if kind == "height" else (kind, scale, seed)
        trees = workload_cache.fetch(cache_key, generate, planes_orders=("memPO", "memPO"))
    if memo is not None:
        memo[memo_key] = trees
    return trees


@dataclass(frozen=True)
class DatasetRef:
    """A declarative dataset reference: concatenated ``(kind, seed offset)`` parts.

    Most figures use a single part; fig7 concatenates the assembly trees
    (offset 0) with the height-study trees (offset 1).  Offsets are applied
    to the figure's effective seed at load time.
    """

    parts: tuple[tuple[str, int], ...]

    @classmethod
    def of(cls, kind: str) -> "DatasetRef":
        return cls(parts=((kind, 0),))

    def load(self, ctx: RunContext, seed: int) -> list[TaskTree]:
        trees: list[TaskTree] = []
        for kind, offset in self.parts:
            trees.extend(
                load_dataset(
                    kind, ctx.scale, seed + offset, ctx.workload_cache, ctx.dataset_memo
                )
            )
        return trees

    def describe(self, seed: int) -> str:
        return "+".join(f"{kind}@{seed + offset}" for kind, offset in self.parts)


@dataclass(frozen=True)
class GridSpec:
    """The value-relevant axes of one sweep grid.

    ``None`` fields fall back to the :class:`~repro.experiments.config.SweepConfig`
    defaults (the paper's heuristic trio, p=8, memPO/memPO), so a spec
    states only what the figure varies — compare the figure map in
    :mod:`repro.experiments.figures` against the paper's Section 7 setups.
    """

    memory_factors: tuple[float, ...]
    schedulers: tuple[str, ...] | None = None
    processors: tuple[int, ...] | None = None
    activation_order: str | None = None
    execution_order: str | None = None
    min_completion_fraction: float | None = None
    validate: bool | None = None
    #: Min-of-N wall-clock timing per cell (the timing figures set this so
    #: their committed artifacts are reproducible).  The one
    #: execution-flavoured knob here because it is a property of the
    #: *figure*, not of the run — it never changes record values and is
    #: excluded from instance cache keys like every execution knob.
    timing_repetitions: int | None = None

    def to_config(self, ctx: RunContext) -> SweepConfig:
        """The grid as a full ``SweepConfig``, execution knobs from ``ctx``."""
        overrides: dict[str, Any] = {
            "memory_factors": tuple(self.memory_factors),
            "jobs": ctx.jobs,
            "backend": ctx.backend,
            "batch_size": ctx.batch_size,
            "native": ctx.native,
            "fault_plan": ctx.fault_plan,
        }
        for name in (
            "schedulers",
            "processors",
            "activation_order",
            "execution_order",
            "min_completion_fraction",
            "validate",
            "timing_repetitions",
        ):
            value = getattr(self, name)
            if value is not None:
                overrides[name] = value
        return SweepConfig(**overrides)

    def value_config(self) -> SweepConfig:
        """The grid's value-relevant fields under default execution knobs.

        What analyzers resolve the defaulted axes (scheduler trio, p=8,
        ``min_completion_fraction``) through without needing a context.
        """
        return self.to_config(RunContext())


@dataclass(frozen=True)
class FigureSpec:
    """One figure of the paper as data: dataset, grids, analyzer, labels."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    seed: int
    dataset: DatasetRef | None = None
    #: One entry per sweep the figure needs (the AO/EO-choice figures run
    #: six); the analyzer receives the swept tables in this order.
    grids: tuple[GridSpec, ...] = ()
    #: ``analyze(spec, tables) -> FigureResult`` — the reduction from raw
    #: records to series + checks.  Unused when ``custom`` is set.
    analyze: "Callable[[FigureSpec, list[RecordTable]], FigureResult] | None" = None
    #: Escape hatch for in-process figures that are not grid sweeps
    #: (lb_stats, the ablations): called with the legacy keyword signature.
    custom: "Callable[..., FigureResult] | None" = None
    #: Free-form analyzer parameters (e.g. the timing figures' x/y keys).
    params: Mapping[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# the generic driver
# --------------------------------------------------------------------------- #
def run_spec(
    spec: FigureSpec, ctx: RunContext | None = None, *, seed: int | None = None
) -> FigureResult:
    """Execute one figure spec under ``ctx`` and return its result.

    Each grid becomes a full :class:`~repro.experiments.plan.SweepPlan`;
    with a cache on the context only the plan's cache misses simulate
    (:func:`~repro.experiments.plan.execute_plan_cached`), so re-runs — and
    figures overlapping an already-executed grid — load rows instead of
    sweeping.
    """
    ctx = ctx or RunContext()
    effective_seed = spec.seed if seed is None else int(seed)
    if spec.custom is not None:
        return spec.custom(
            scale=ctx.scale,
            seed=effective_seed,
            jobs=ctx.jobs,
            backend=ctx.backend,
            batch_size=ctx.batch_size,
            native=ctx.native,
            cache=ctx.cache,
            workload_cache=ctx.workload_cache,
        )
    if spec.dataset is None or spec.analyze is None:
        raise ValueError(f"figure spec {spec.figure_id!r} has no dataset/analyzer")
    trees = spec.dataset.load(ctx, effective_seed)
    tables: list[RecordTable] = []
    for grid in spec.grids:
        plan = SweepPlan.from_config(grid.to_config(ctx), len(trees))
        tables.append(execute_plan_cached(trees, plan, cache=ctx.cache))
    return spec.analyze(spec, tables)


# --------------------------------------------------------------------------- #
# plan assembly without execution (dry-run, suite accounting)
# --------------------------------------------------------------------------- #
def assemble_plans(
    specs: Iterable[FigureSpec], ctx: RunContext
) -> "list[tuple[FigureSpec, list[tuple[SweepPlan, list[str]]]]]":
    """The plans (and instance keys) each spec would execute under ``ctx``.

    Datasets are loaded (via the context's memo, so a subsequent execution
    reuses them) because the content-addressed instance keys require the
    tree bytes; nothing is simulated.  Custom (non-grid) figures contribute
    an empty plan list.
    """
    assembled: list[tuple[FigureSpec, list[tuple[SweepPlan, list[str]]]]] = []
    for spec in specs:
        plans: list[tuple[SweepPlan, list[str]]] = []
        if spec.dataset is not None and spec.grids:
            trees = spec.dataset.load(ctx, spec.seed)
            for grid in spec.grids:
                plan = SweepPlan.from_config(grid.to_config(ctx), len(trees))
                plans.append((plan, plan.instance_keys(trees)))
        assembled.append((spec, plans))
    return assembled


def plan_report(specs: Sequence[FigureSpec], ctx: RunContext) -> dict[str, Any]:
    """Aggregate plan statistics for a set of figures under ``ctx``.

    Returns per-figure and total counts of requested instances, *unique*
    instances (cross-figure overlap removed), instances predicted to come
    from the cache, and lane-group counts (how many
    :func:`~repro.batch.lanes.simulate_lanes` calls a batched execution
    would make).  This is what ``--dry-run`` prints and what
    ``summary.md``'s ``instances: N unique / M requested / K cached`` line
    reports.
    """
    from ..batch.lanes import batchable_scheduler

    cache = ctx.cache
    seen: set[str] = set()
    cached_keys: set[str] = set()
    figures: list[dict[str, Any]] = []
    requested_total = 0
    lane_groups_total = 0
    for spec, plans in assemble_plans(specs, ctx):
        requested = 0
        new_keys: set[str] = set()
        overlap = 0
        lane_groups = 0
        for plan, keys in plans:
            requested += len(keys)
            for key in keys:
                if key in seen or key in new_keys:
                    overlap += 1
                else:
                    new_keys.add(key)
            lane_groups += plan.lane_group_count(batchable_scheduler, ctx.batch_size)
        if cache is not None and new_keys:
            count = getattr(cache, "count_cached", None)
            if count is not None:
                hits = [key for key in new_keys if count([key])]
                cached_keys.update(hits)
        seen.update(new_keys)
        requested_total += requested
        lane_groups_total += lane_groups
        figures.append(
            {
                "figure_id": spec.figure_id,
                "requested": requested,
                "new": len(new_keys),
                "overlap": overlap,
                "cached": sum(1 for key in new_keys if key in cached_keys),
                "lane_groups": lane_groups,
            }
        )
    return {
        "figures": figures,
        "requested": requested_total,
        "unique": len(seen),
        "cached": len(cached_keys),
        "lane_groups": lane_groups_total,
    }


def format_plan_report(report: Mapping[str, Any]) -> str:
    """Human-readable dry-run rendering of :func:`plan_report`'s output."""
    lines = [
        "sweep plan (dry run):",
        (
            f"  instances: {report['unique']} unique / {report['requested']} requested"
            f" / {report['cached']} cached"
        ),
        (
            f"  predicted: {report['cached']} cache hits /"
            f" {report['unique'] - report['cached']} fresh simulations"
        ),
        f"  lane groups (batched backend): {report['lane_groups']}",
    ]
    for entry in report["figures"]:
        lines.append(
            f"  {entry['figure_id']}: {entry['requested']} requested"
            f" ({entry['overlap']} shared with earlier figures,"
            f" {entry['cached']} cached, {entry['lane_groups']} lane groups)"
        )
    return "\n".join(lines)
