"""Configuration objects for experiment sweeps.

A :class:`SweepConfig` describes the cartesian product explored by
:func:`repro.experiments.runner.run_sweep`: which heuristics, which memory
factors (multiples of the minimum sequential memory of each tree), which
processor counts and which activation/execution orders.  The defaults match
the main setup of Section 7.2 of the paper: three heuristics, eight
processors, memory factors from 1 to 20, and the memory-minimising postorder
used for both AO and EO.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SweepConfig", "DEFAULT_MEMORY_FACTORS", "PAPER_HEURISTICS"]

#: Memory factors used by most figures (normalised memory bound axis).
DEFAULT_MEMORY_FACTORS: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0)

#: The three heuristics compared throughout Section 7.
PAPER_HEURISTICS: tuple[str, ...] = ("Activation", "MemBookingRedTree", "MemBooking")


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one experiment sweep.

    Attributes
    ----------
    schedulers:
        Names resolved through :data:`repro.schedulers.SCHEDULER_FACTORIES`.
    memory_factors:
        Multiples of each tree's minimum sequential memory (the peak of its
        memory-minimising postorder) used as memory bounds.
    processors:
        Processor counts to explore (the paper mainly reports ``p = 8``).
    activation_order / execution_order:
        Ordering names resolved through :data:`repro.orders.ORDER_FACTORIES`.
    min_completion_fraction:
        A (memory factor, scheduler) point is only reported when at least
        this fraction of the trees could be scheduled — the paper uses 95%.
    validate:
        When true, every produced schedule is checked by
        :func:`repro.schedulers.validate_schedule` (slower, used in tests and
        benchmarks; the experiment scripts keep it on by default because the
        trees are laptop-scale).
    jobs:
        Number of worker processes used by
        :func:`repro.experiments.runner.run_sweep`.  ``1`` (the default)
        keeps the sweep in-process; ``0`` means "one worker per available
        CPU".  Records are always merged back in the exact order the serial
        sweep would produce.
    backend:
        Execution backend used by :func:`~repro.experiments.runner.run_sweep`
        (resolved through the :func:`repro.experiments.backends.register_backend`
        registry): ``"serial"`` (in-process), ``"process"`` (one pickled tree
        per pool task), ``"shared-memory"`` (zero-copy arena transfer,
        instance-granularity scheduling), ``"batched"`` (the lane-batched
        in-process stepper of :mod:`repro.batch` — all instances of one tree
        advanced in lock-step) or ``"auto"`` (the default — serial for one
        worker, ``"process"`` otherwise, the historical behaviour).
    batch_size:
        Lanes per batch for the ``"batched"`` backend; ``0`` (the CLI's
        ``auto``) keeps every instance of one (tree, heuristic) in a single
        batch, which maximises lane collapse.  Execution-only — like
        ``jobs`` and ``backend`` it never changes the records produced.
    native:
        Compiled kernel plane selection (:mod:`repro.native`): ``True``
        requires the C kernels (raise if they cannot be built), ``False``
        forces the pure-Python kernels, ``None`` (the default) defers to
        the ``REPRO_NATIVE`` environment switch (AUTO with silent
        fallback when unset).  Execution-only — the native stepper is
        bit-identical by contract, so it never changes the records.
    fault_plan:
        Deterministic fault-injection plan spec
        (:func:`repro.resilience.parse_fault_plan` grammar, e.g.
        ``"seed=7;worker-crash:40;watchdog=5"``); ``None`` (the default)
        defers to the ``REPRO_FAULTS`` environment variable.  Execution-only
        — a recoverable plan produces records byte-identical to a
        fault-free run (instances that exhaust the retry budget are
        quarantined into the failure plane, and such rows are never
        cached).
    timing_repetitions:
        Number of times each instance's simulation is run on the scalar
        path, keeping the *minimum* wall-clock ``scheduling_seconds`` (the
        standard guard against one-off scheduler/GC noise).  The timing
        figures (fig5, fig6, fig13) set this above 1 so their committed
        artifacts are stable across regenerations.  Execution-only: value
        fields come from the first run and the simulations are
        deterministic, so only the wall-clock timing fields — which are
        excluded from every byte-identity check and cache key — are
        affected.  Best-effort on the batched lane path (collapsed lanes
        replay their representative's timing unchanged).
    """

    schedulers: tuple[str, ...] = PAPER_HEURISTICS
    memory_factors: tuple[float, ...] = DEFAULT_MEMORY_FACTORS
    processors: tuple[int, ...] = (8,)
    activation_order: str = "memPO"
    execution_order: str = "memPO"
    min_completion_fraction: float = 0.95
    validate: bool = True
    jobs: int = 1
    backend: str = "auto"
    batch_size: int = 0
    native: bool | None = None
    fault_plan: str | None = None
    timing_repetitions: int = 1

    def __post_init__(self) -> None:
        if not self.schedulers:
            raise ValueError("at least one scheduler is required")
        if not self.memory_factors or min(self.memory_factors) < 1.0:
            raise ValueError("memory factors must be >= 1 (relative to the minimum memory)")
        if not self.processors or min(self.processors) < 1:
            raise ValueError("processor counts must be positive")
        if not 0.0 <= self.min_completion_fraction <= 1.0:
            raise ValueError("min_completion_fraction must be in [0, 1]")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 means one batch per tree)")
        if self.timing_repetitions < 1:
            raise ValueError("timing_repetitions must be >= 1")
        # Local import: backends imports this module for type information.
        from .backends import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {sorted(BACKEND_NAMES)}"
            )
        if self.fault_plan is not None:
            # Validate the spec eagerly: a typo'd plan should fail at
            # configuration time, not halfway into a sweep.
            from ..resilience.faults import parse_fault_plan

            parse_fault_plan(self.fault_plan)

    def with_overrides(self, **kwargs) -> "SweepConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)
