"""Columnar storage for sweep result records (the *result plane*).

:mod:`repro.experiments.runner` produces one flat record per simulated
(tree, processors, memory factor, heuristic) instance.  Up to PR 2 those
records lived as a ``list[dict]``: every worker pickled full dicts through
the pool pipe and every aggregation walked Python objects — the first
bottleneck ROADMAP flags for the paper's million-instance campaigns.

:class:`RecordTable` replaces the list-of-dicts as the canonical sweep
output.  It is **columnar**: one typed NumPy array per record field, all of
them slices of a single contiguous arena (mirroring
:class:`~repro.core.tree_store.TreeStore`), so that

* the :class:`~repro.experiments.backends.SharedMemoryBackend` can
  preallocate the whole result buffer in named shared memory, let workers
  write rows in place and ship back only **row indices** (a pickled ``int``
  instead of a pickled dict — see ``benchmarks/results/result_payloads.txt``),
* :mod:`repro.experiments.metrics` aggregates over columns with vectorised
  NumPy operations instead of per-record Python loops, and
* :meth:`RecordTable.save` / :meth:`RecordTable.load` persist the same arena
  bytes to disk (mmap-able, versioned header like
  :mod:`repro.core.tree_store`), which backs the :class:`ResultCache` used
  by :func:`repro.experiments.suite.run_suite` to skip already-computed
  sweeps.

Compatibility: a :class:`RecordTable` behaves as a read-only sequence of
plain-``dict`` records (:meth:`RecordTable.to_dicts`, ``__iter__``,
``__getitem__``, ``==`` against a list of dicts), so every call site written
against the PR 2 list-of-dicts pipeline keeps working unchanged, and the
round-tripped values are identical to the dicts :func:`~repro.experiments.runner.run_single`
produced (Python ``int``/``float``/``bool``/``str``/``None``, exact bits).

Arena layout (version 1, little-endian)::

    0   8 bytes   magic  b"MTRECTB1"
    8   u64       format version
    16  u64       number of rows
    24  u64       length of the JSON metadata block
    32  u64       offset of the data section (8-byte aligned)
    40  ...       JSON metadata: {"fields": [[name, dtype], ...],
                                  "metadata": {...free form...}}
    data_offset   one contiguous column per field, in schema order,
                  each column start 8-byte aligned

The record schema (:data:`RECORD_FIELDS`) is fixed and derived from
:func:`repro.experiments.runner.run_single` — a unit test asserts the two
never drift apart.  String fields use fixed-width unicode columns so rows
have a fixed size (a worker can write row ``i`` without coordination).

``failure_reason`` is nullable and **dictionary-encoded** (format version 2):
the column stores ``int32`` codes (``0`` encodes ``None``, ``k > 0`` the
``k``-th distinct message) and the small codes table travels in the arena's
JSON metadata.  Failure messages are few and templated while the historical
``U128`` column paid 512 bytes per row whether or not anything failed, so
failure-heavy sweeps shrink roughly 4x — and messages are no longer
truncated at 128 characters.  Codes are assigned in canonical row order by
whoever owns the table (the merge side of every backend), so equal sweeps
still produce byte-equal tables.  Version-1 files (fixed-width
``failure_reason``) still load: the column layout is described by the
embedded metadata, not hard-coded.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Protocol, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing import shared_memory

    from .config import SweepConfig

__all__ = [
    "Field",
    "RECORD_FIELDS",
    "RecordTable",
    "ResultCache",
    "InMemoryRowCache",
    "RowCache",
    "CACHE_SCHEMA_VERSION",
    "records_equal",
    "quarantine_corrupt_file",
]

#: Version of the :class:`ResultCache` keying scheme.  Participates in every
#: cache key (sweep blobs *and* instance rows), so bumping it orphans all
#: pre-existing entries — they are silently ignored (never crashed on) and
#: eventually overwritten.  Version 3 introduced instance-level row storage
#: and retired the pre-plan sweep-level keying.
CACHE_SCHEMA_VERSION = 3

_MAGIC = b"MTRECTB1"
_VERSION = 2
#: magic, version, n_rows, meta_len, data_offset
_HEADER = struct.Struct("<8sQQQQ")


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class Field:
    """One column of the record schema."""

    name: str
    dtype: str  #: NumPy dtype string (``"<i8"``, ``"<f8"``, ``"|b1"``, ``"<U24"``)
    nullable: bool = False  #: ``None`` is representable (``""`` / code ``0``)
    #: ``"dict"`` for dictionary-encoded string columns: the column stores
    #: integer codes, the value table lives in the arena metadata.
    encoding: str | None = None

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def str_width(self) -> int | None:
        """Character capacity for unicode columns, ``None`` for scalars."""
        dt = self.np_dtype
        return dt.itemsize // 4 if dt.kind == "U" else None


#: The fixed sweep-record schema, in the exact key order of
#: :func:`repro.experiments.runner.run_single`'s output dict.
RECORD_FIELDS: tuple[Field, ...] = (
    Field("tree_index", "<i8"),
    Field("tree_size", "<i8"),
    Field("tree_height", "<i8"),
    Field("scheduler", "<U24"),
    Field("num_processors", "<i8"),
    Field("memory_factor", "<f8"),
    Field("memory_limit", "<f8"),
    Field("minimum_memory", "<f8"),
    Field("completed", "|b1"),
    Field("makespan", "<f8"),
    Field("lower_bound", "<f8"),
    Field("classical_lower_bound", "<f8"),
    Field("memory_lower_bound", "<f8"),
    Field("normalized_makespan", "<f8"),
    Field("peak_memory", "<f8"),
    Field("memory_fraction", "<f8"),
    Field("scheduling_seconds", "<f8"),
    Field("scheduling_seconds_per_node", "<f8"),
    Field("activation_order", "<U16"),
    Field("execution_order", "<U16"),
    Field("failure_reason", "<i4", nullable=True, encoding="dict"),
)


def _column_offsets(
    fields: Sequence[Field], n_rows: int, data_offset: int
) -> tuple[list[int], int]:
    """Per-column arena offsets from ``data_offset`` on, and the total size."""
    offsets: list[int] = []
    cursor = int(data_offset)
    for field in fields:
        cursor = _align8(cursor)
        offsets.append(cursor)
        cursor += field.np_dtype.itemsize * n_rows
    return offsets, _align8(cursor)


def _layout(fields: Sequence[Field], n_rows: int, meta_bytes: bytes) -> tuple[int, list[int], int]:
    """Arena layout: (data offset, per-column offsets, total bytes)."""
    data_offset = _align8(_HEADER.size + len(meta_bytes))
    offsets, nbytes = _column_offsets(fields, n_rows, data_offset)
    return data_offset, offsets, nbytes


def _meta_bytes(
    fields: Sequence[Field],
    metadata: Mapping[str, Any] | None,
    codes: Mapping[str, Sequence[str]] | None = None,
) -> bytes:
    meta: dict[str, Any] = {
        "fields": [[f.name, f.dtype, f.nullable, f.encoding] for f in fields],
        "metadata": dict(metadata or {}),
    }
    if codes:  # only dictionary-encoded columns with at least one value
        non_empty = {name: list(values) for name, values in codes.items() if values}
        if non_empty:
            meta["codes"] = non_empty
    return json.dumps(meta, separators=(",", ":")).encode("utf-8")


class RecordTable:
    """A fixed-schema, arena-backed, columnar table of sweep records.

    Construct through the classmethods:

    * :meth:`empty` — preallocate ``n`` zeroed rows (writable);
    * :meth:`from_dicts` — convert a list of record dicts;
    * :meth:`load` — mmap (or read) a file written by :meth:`save`;
    * :meth:`create_shared` / :meth:`attach` — the shared-memory result
      buffer of the sweep backends.

    The table is also a read-only *sequence of dict records*: iterating
    yields plain dicts identical to the historical pipeline's, ``table[i]``
    materialises one row and ``table == [ {...}, ... ]`` compares values.
    """

    def __init__(
        self,
        buffer: "bytes | bytearray | memoryview | mmap.mmap",
        *,
        shm: "shared_memory.SharedMemory | None" = None,
        mmap_obj: mmap.mmap | None = None,
    ) -> None:
        """Wrap an existing arena ``buffer`` (bytearray, mmap or shm view).

        Most callers should use the classmethod constructors instead.
        """
        self._buffer = buffer
        self._shm = shm
        self._mmap = mmap_obj

        size = memoryview(buffer).nbytes
        if size < _HEADER.size:
            raise ValueError("buffer too small to hold a RecordTable header")
        magic, version, n_rows, meta_len, data_offset = _HEADER.unpack_from(buffer, 0)
        if magic != _MAGIC:
            raise ValueError("not a RecordTable arena (bad magic)")
        if version > _VERSION:
            raise ValueError(f"unsupported RecordTable version {version}")
        if data_offset % 8 != 0 or data_offset < _align8(_HEADER.size + meta_len):
            raise ValueError("not a RecordTable arena (invalid data offset)")
        if size < _HEADER.size + meta_len:
            raise ValueError("truncated RecordTable arena: metadata exceeds the buffer")
        meta = json.loads(bytes(memoryview(buffer)[_HEADER.size : _HEADER.size + meta_len]))
        fields = tuple(
            # Version-1 metadata carried [name, dtype, nullable]; version 2
            # appends the encoding.  Both load.
            Field(entry[0], entry[1], bool(entry[2]), entry[3] if len(entry) > 3 else None)
            for entry in meta["fields"]
        )

        offsets, nbytes = _column_offsets(fields, int(n_rows), int(data_offset))
        if size < nbytes:
            raise ValueError(f"truncated RecordTable arena: {size} bytes, layout needs {nbytes}")

        self._n_rows = int(n_rows)
        self._nbytes = int(nbytes)
        self.fields = fields
        self.metadata: dict[str, Any] = meta.get("metadata", {})
        # Dictionary-encoded columns: value tables (code k-1 -> string) and
        # the reverse index used when encoding rows.  They live Python-side
        # and are embedded into the arena metadata by ``save``.
        stored_codes = meta.get("codes", {})
        self._meta_raw = bytes(memoryview(buffer)[_HEADER.size : _HEADER.size + meta_len])
        self._dict_codes: dict[str, list[str]] = {}
        self._dict_index: dict[str, dict[str, int]] = {}
        for field in fields:
            if field.encoding == "dict":
                values = [str(v) for v in stored_codes.get(field.name, [])]
                self._dict_codes[field.name] = values
                self._dict_index[field.name] = {v: k + 1 for k, v in enumerate(values)}
        self._columns: dict[str, np.ndarray] = {}
        for field, offset in zip(fields, offsets):
            self._columns[field.name] = np.frombuffer(
                buffer, dtype=field.np_dtype, count=self._n_rows, offset=offset
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_rows: int, *, metadata: Mapping[str, Any] | None = None) -> "RecordTable":
        """Preallocate a writable table of ``n_rows`` zeroed records."""
        if n_rows < 0:
            raise ValueError("n_rows must be >= 0")
        meta = _meta_bytes(RECORD_FIELDS, metadata)
        data_offset, _, nbytes = _layout(RECORD_FIELDS, n_rows, meta)
        arena = bytearray(nbytes)
        _HEADER.pack_into(arena, 0, _MAGIC, _VERSION, n_rows, len(meta), data_offset)
        arena[_HEADER.size : _HEADER.size + len(meta)] = meta
        return cls(arena)

    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, Any]],
        *,
        metadata: Mapping[str, Any] | None = None,
    ) -> "RecordTable":
        """Build a table from record dicts (the historical pipeline format)."""
        records = list(records)
        table = cls.empty(len(records), metadata=metadata)
        for index, record in enumerate(records):
            table.set_row(index, record)
        return table

    @classmethod
    def load(cls, path: str | Path, *, use_mmap: bool = True) -> "RecordTable":
        """Open a table file written by :meth:`save`.

        With ``use_mmap=True`` (default) the file is memory-mapped read-only,
        so opening a huge result set is O(1) in I/O; the column arrays page
        in lazily.
        """
        path = Path(path)
        if use_mmap:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            return cls(mapped, mmap_obj=mapped)
        return cls(path.read_bytes())

    @classmethod
    def create_shared(
        cls, n_rows: int, *, metadata: Mapping[str, Any] | None = None, name: str | None = None
    ) -> "tuple[shared_memory.SharedMemory, RecordTable]":
        """Preallocate a table in a fresh named shared-memory block.

        Returns ``(shm, table)``: the caller owns the
        :class:`multiprocessing.shared_memory.SharedMemory` (``close()`` +
        ``unlink()`` when done — and :meth:`close` the table first, its
        column views pin the buffer); workers :meth:`attach` by ``shm.name``
        and write disjoint rows with :meth:`set_row` without any locking.
        """
        from multiprocessing import shared_memory

        meta = _meta_bytes(RECORD_FIELDS, metadata)
        data_offset, _, nbytes = _layout(RECORD_FIELDS, n_rows, meta)
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        try:
            _HEADER.pack_into(shm.buf, 0, _MAGIC, _VERSION, n_rows, len(meta), data_offset)
            shm.buf[_HEADER.size : _HEADER.size + len(meta)] = meta
            table = cls(shm.buf)
        except BaseException:
            shm.unlink()
            try:
                shm.close()
            except BufferError:  # the unwinding frame may still hold views
                pass
            raise
        return shm, table

    @classmethod
    def attach(cls, name: str) -> "RecordTable":
        """Attach to a table published with :meth:`create_shared` (writable)."""
        from ..core.tree_store import _open_shared_memory

        shm = _open_shared_memory(name)
        return cls(shm.buf, shm=shm)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _arena_view(self) -> memoryview:
        return memoryview(self._buffer)[: self._nbytes]

    def _rebuild_arena(self, meta: bytes) -> bytearray:
        """Repack the table into a fresh arena carrying ``meta``.

        Needed when the dictionary-code tables grew after the arena header
        was written: the metadata block changes length, which shifts every
        column offset, so the columns are copied into the new layout.
        """
        data_offset, offsets, nbytes = _layout(self.fields, self._n_rows, meta)
        arena = bytearray(nbytes)
        _HEADER.pack_into(arena, 0, _MAGIC, _VERSION, self._n_rows, len(meta), data_offset)
        arena[_HEADER.size : _HEADER.size + len(meta)] = meta
        for field, offset in zip(self.fields, offsets):
            view = np.frombuffer(arena, dtype=field.np_dtype, count=self._n_rows, offset=offset)
            view[:] = self._columns[field.name]
        return arena

    def to_bytes(self) -> bytes:
        """The self-describing arena bytes (the service wire format).

        Dictionary-code tables accumulated since the arena was created are
        embedded into the metadata block first, so the returned bytes always
        round-trip their encoded columns: ``RecordTable(table.to_bytes())``
        reproduces the table exactly.  When embedding forces a repack, the
        table adopts the rebuilt arena (codes included), so a second call
        on an unchanged table is zero-copy again.
        """
        meta = _meta_bytes(self.fields, self.metadata, self._dict_codes)
        if meta != self._meta_raw:
            # Re-initialise around the rebuilt arena: the embedded metadata
            # now carries the codes, so parsing restores them and _meta_raw
            # matches on the next call.  Previously handed-out column views
            # (and any old mmap/shm handle) stay alive on the old arena
            # until their last reference dies.
            self.__init__(self._rebuild_arena(meta))
        return bytes(self._arena_view())

    def save(self, path: str | Path) -> Path:
        """Write the arena to ``path`` (atomically) and return the path."""
        from ..resilience.atomic import atomic_write_bytes

        return atomic_write_bytes(path, self.to_bytes())

    def copy(self) -> "RecordTable":
        """Deep copy into a private in-memory arena (detached from shm/mmap)."""
        arena = bytearray(self._arena_view())
        table = RecordTable(arena)
        # Carry the runtime dictionary-code tables (the arena metadata only
        # catches up on save).
        table._dict_codes = {name: list(values) for name, values in self._dict_codes.items()}
        table._dict_index = {name: dict(index) for name, index in self._dict_index.items()}
        return table

    def close(self) -> None:
        """Drop the column views and release any mmap / shared-memory handle.

        Required before the owning shared-memory segment can be closed:
        the column arrays hold buffer exports into it.
        """
        self._columns = {}
        self._buffer = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    # ------------------------------------------------------------------ #
    # columnar access
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Size of the arena in bytes."""
        return self._nbytes

    def column(self, name: str) -> np.ndarray:
        """The NumPy column for ``name``.

        Plain fields return the arena view directly.  Dictionary-encoded
        fields are **decoded** into an object array of ``str | None`` so the
        values match the row views — callers filtering with
        ``table.column("failure_reason") == "deadlock..."`` compare strings,
        not private integer codes.  Use :meth:`raw_column` for the arena
        bytes.
        """
        field = self._field(name)
        if field.encoding == "dict":
            return np.asarray(self._decode_column(field), dtype=object)
        return self._columns[name]

    def raw_column(self, name: str) -> np.ndarray:
        """The raw arena view for ``name`` (integer codes for encoded fields)."""
        self._field(name)
        return self._columns[name]

    def _field(self, name: str) -> Field:
        for field in self.fields:
            if field.name == name:
                return field
        raise KeyError(
            f"unknown record field {name!r}; available: {[f.name for f in self.fields]}"
        )

    def _encode(self, field: Field, value: Any) -> int:
        """Dictionary-encode ``value`` for ``field`` (``None`` -> code 0)."""
        if value is None:
            if not field.nullable:
                raise ValueError(f"field {field.name!r} is not nullable")
            return 0
        index = self._dict_index[field.name]
        code = index.get(value)
        if code is None:
            codes = self._dict_codes[field.name]
            codes.append(value)
            code = index[value] = len(codes)
        return code

    def set_row(self, index: int, record: Mapping[str, Any]) -> None:
        """Write one record dict into row ``index`` (O(1), columnar placement).

        Every schema field must be present in ``record``; string values that
        exceed their column's fixed width raise (silent truncation would
        break the value-identity guarantee of the table).  Dictionary-encoded
        fields have no width limit — new values grow the codes table.
        """
        for field in self.fields:
            value = record[field.name]
            if field.encoding == "dict":
                value = self._encode(field, value)
            else:
                width = field.str_width
                if width is not None:
                    if value is None:
                        if not field.nullable:
                            raise ValueError(f"field {field.name!r} is not nullable")
                        value = ""
                    elif len(value) > width:
                        raise ValueError(
                            f"value of field {field.name!r} is {len(value)} characters, "
                            f"column capacity is {width}: {value!r}"
                        )
            self._columns[field.name][index] = value

    def set_value(self, index: int, name: str, value: Any) -> None:
        """Write one field of one row (encoding-aware).

        The shared-memory backend uses this to place canonical failure codes
        after the unordered worker results are collected: workers cannot
        share a growing codes table, so the merge side owns the encoding.
        """
        field = self._field(name)
        if field.encoding == "dict":
            value = self._encode(field, value)
        self._columns[name][index] = value

    # ------------------------------------------------------------------ #
    # dict-records view (compatibility with the list-of-dicts pipeline)
    # ------------------------------------------------------------------ #
    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialise every row as a plain dict (schema key order).

        Values come back as native Python scalars with exact bits —
        ``int`` / ``float`` / ``bool`` / ``str`` / ``None`` — so the result
        is value-identical to the historical ``run_single`` dicts.
        """
        names = []
        columns = []
        for field in self.fields:
            data = self._columns[field.name].tolist()
            if field.encoding == "dict":
                codes = self._dict_codes[field.name]
                data = [None if code == 0 else codes[code - 1] for code in data]
            elif field.nullable:
                data = [None if value == "" else value for value in data]
            names.append(field.name)
            columns.append(data)
        return [dict(zip(names, row)) for row in zip(*columns)]

    def row(self, index: int) -> dict[str, Any]:
        """Materialise one row as a plain dict."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range [0, {self._n_rows})")
        out: dict[str, Any] = {}
        for field in self.fields:
            value = self._columns[field.name][index].item()
            if field.encoding == "dict":
                codes = self._dict_codes[field.name]
                value = None if value == 0 else codes[value - 1]
            elif field.nullable and value == "":
                value = None
            out[field.name] = value
        return out

    def __len__(self) -> int:
        return self._n_rows

    def __getitem__(self, key: "str | int | slice") -> Any:
        if isinstance(key, str):
            return self.column(key)
        if isinstance(key, slice):
            return self.to_dicts()[key]
        return self.row(key)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.to_dicts())

    def _decode_column(self, field: Field) -> list[str | None]:
        codes = self._dict_codes[field.name]
        return [
            None if code == 0 else codes[code - 1]
            for code in self._columns[field.name].tolist()
        ]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordTable):
            if len(self) != len(other) or self.fields != other.fields:
                return False
            for f in self.fields:
                if f.encoding == "dict":
                    # Compare decoded values: equal tables may have assigned
                    # codes in a different first-seen order.
                    if self._decode_column(f) != other._decode_column(f):
                        return False
                elif not np.array_equal(
                    self._columns[f.name],
                    other._columns[f.name],
                    equal_nan=f.np_dtype.kind == "f",
                ):
                    return False
            return True
        if isinstance(other, (list, tuple)):
            return self.to_dicts() == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordTable(rows={self._n_rows}, fields={len(self.fields)}, nbytes={self._nbytes})"


def records_equal(
    a: Iterable[Mapping[str, Any]],
    b: Iterable[Mapping[str, Any]],
    *,
    ignore: Iterable[str] = (),
) -> bool:
    """Value equality of two record sequences, NaN-tolerant.

    Plain ``list[dict] ==`` treats ``nan != nan``, which makes failed
    instances (``normalized_makespan`` is NaN) incomparable; this helper
    compares field by field and counts two NaNs as equal.  ``ignore`` drops
    fields (e.g. the wall-clock timings) from the comparison.
    """
    ignored = frozenset(ignore)
    a, b = list(a), list(b)
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        keys = set(ra) - ignored
        if keys != set(rb) - ignored:
            return False
        for key in keys:
            va, vb = ra[key], rb[key]
            if isinstance(va, float) and isinstance(vb, float):
                if not (va == vb or (np.isnan(va) and np.isnan(vb))):
                    return False
            elif va != vb or type(va) is not type(vb):
                return False
    return True


# --------------------------------------------------------------------------- #
# persistent result cache
# --------------------------------------------------------------------------- #
class RowCache(Protocol):
    """The instance-row cache protocol :func:`~repro.experiments.plan.execute_plan_cached` consumes.

    Both :class:`ResultCache` (persistent) and :class:`InMemoryRowCache`
    (per-suite-run dedup when no cache directory is configured) implement it.
    """

    hits: int
    misses: int
    rows_cached: int
    rows_fresh: int

    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]: ...

    def put_rows(self, pairs: Iterable[tuple[str, Mapping[str, Any]]]) -> None: ...


def quarantine_corrupt_file(path: Path) -> None:
    """Move a corrupt cache file aside (``<name>.quarantined``) and count it.

    Renaming rather than deleting keeps the evidence for post-mortems while
    guaranteeing the next load sees a clean miss instead of re-parsing the
    same torn bytes; the per-run health ledger records the quarantine.
    """
    from ..resilience.health import current_health

    try:
        os.replace(path, path.with_name(path.name + ".quarantined"))
    except OSError:  # already gone / unwritable directory — a miss either way
        return
    current_health().cache_quarantines += 1


class ResultCache:
    """A directory of saved :class:`RecordTable` files keyed by sweep identity.

    The key is a digest of *what determines the record values*: the dataset
    descriptor (kind, scale, seed) and the :class:`~repro.experiments.config.SweepConfig`
    fields **minus** the execution-only knobs (``jobs``, ``backend`` — every
    backend/worker count produces identical records, timing fields aside)
    plus the schema version.  Layout: one ``<key>.records`` arena file per
    sweep under the cache directory (see the module docstring for the file
    format).

    Used by :func:`repro.experiments.suite.run_suite` and ``memtree figure
    --cache-dir`` so a re-run at the same scale loads results instead of
    re-simulating.
    """

    #: Config fields excluded from the key: they change how a sweep runs,
    #: never what it produces.  ``fault_plan`` qualifies because recoverable
    #: faults reproduce identical records and quarantined rows are never
    #: written to the cache (:func:`~repro.experiments.plan.execute_plan_cached`).
    EXECUTION_ONLY_FIELDS = frozenset(
        {"jobs", "backend", "batch_size", "native", "fault_plan"}
    )

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Row-granularity counters (the plan layer fills these): rows served
        #: from the store vs rows simulated fresh this session.
        self.rows_cached = 0
        self.rows_fresh = 0
        self._row_table: RecordTable | None = None
        self._row_index: dict[str, int] | None = None

    def key(self, dataset_key: Sequence[Any], config: "SweepConfig") -> str:
        """Stable digest of one sweep's identity.

        The package version participates in the key so upgrading the
        simulator invalidates recorded results instead of silently serving
        numbers an older code base produced.
        """
        from dataclasses import asdict

        from .. import __version__

        fields = {
            k: v for k, v in sorted(asdict(config).items()) if k not in self.EXECUTION_ONLY_FIELDS
        }
        payload = {
            "schema_version": _VERSION,
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "package_version": __version__,
            "dataset": list(dataset_key),
            "config": fields,
        }
        blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:40]

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.records"

    def get(self, key: str) -> RecordTable | None:
        """Load the cached table for ``key``, or ``None`` on a miss.

        A corrupt/truncated cache file counts as a miss (the entry is
        recomputed and overwritten), never an error.
        """
        path = self.path(key)
        if path.exists():
            try:
                table = RecordTable.load(path)
            except (ValueError, OSError):
                quarantine_corrupt_file(path)
            else:
                self.hits += 1
                return table
        self.misses += 1
        return None

    def put(self, key: str, table: RecordTable) -> Path:
        """Persist ``table`` under ``key`` (atomic replace)."""
        return table.save(self.path(key))

    # ------------------------------------------------------------------ #
    # instance-level row storage (cache schema version 3)
    # ------------------------------------------------------------------ #
    # One ``rows.records`` arena holds every cached instance record; the
    # sidecar ``rows.index.json`` maps instance content keys (see
    # :meth:`~repro.experiments.plan.SweepPlan.instance_keys`) to row
    # positions.  Keys embed :data:`CACHE_SCHEMA_VERSION`, so a directory
    # written by an older scheme simply never matches — stale sweep-level
    # ``<key>.records`` blobs coexist harmlessly until overwritten.

    def _rows_path(self) -> Path:
        return self.directory / "rows.records"

    def _rows_index_path(self) -> Path:
        return self.directory / "rows.index.json"

    def _load_rows(self) -> tuple[RecordTable | None, dict[str, int]]:
        """Open the row store lazily; anything corrupt is quarantined aside
        (``*.quarantined``) and the store degrades to empty — a miss, never
        an error, and the next ``put_rows`` rebuilds a clean store."""
        if self._row_index is None:
            table: RecordTable | None = None
            index: dict[str, int] = {}
            index_path = self._rows_index_path()
            if index_path.exists() and self._rows_path().exists():
                try:
                    raw = json.loads(index_path.read_text(encoding="utf-8"))
                    table = RecordTable.load(self._rows_path())
                    index = {str(k): int(v) for k, v in raw.items()}
                    if index and max(index.values()) >= len(table):
                        raise ValueError("row index points past the row table")
                except (ValueError, OSError, AttributeError):
                    table, index = None, {}
                    quarantine_corrupt_file(self._rows_path())
                    quarantine_corrupt_file(index_path)
            self._row_table, self._row_index = table, index
        return self._row_table, self._row_index

    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Cached record dicts for every key present in the row store."""
        table, index = self._load_rows()
        out: dict[str, dict[str, Any]] = {}
        if table is not None:
            for key in keys:
                position = index.get(key)
                if position is not None:
                    out[key] = table.row(position)
        return out

    def count_cached(self, keys: Sequence[str]) -> int:
        """How many of ``keys`` the row store holds (dry-run prediction)."""
        _, index = self._load_rows()
        return sum(1 for key in keys if key in index)

    def put_rows(self, pairs: Iterable[tuple[str, Mapping[str, Any]]]) -> None:
        """Insert/overwrite instance rows and persist the store atomically.

        The arena is rebuilt from all rows on every call — the store is
        small relative to the simulations it saves, and a rebuild keeps the
        arena compact and its dictionary codes canonical.

        The whole read-merge-write runs under an exclusive cross-process
        :class:`~repro.resilience.locks.FileLock` (``rows.lock``), and the
        on-disk store is **re-read inside the lock** rather than merged
        from this process's cached snapshot: two processes appending
        concurrently each merge on top of whatever the other already
        published, so neither replace can drop the other's rows.  Each
        publish itself stays on the crash-safe atomic-write path — a writer
        killed mid-section releases the lock via the kernel and leaves
        intact files behind.
        """
        from ..resilience.atomic import atomic_write_text
        from ..resilience.locks import FileLock

        fresh = {key: dict(record) for key, record in pairs}
        if not fresh:
            return
        with FileLock(self.directory / "rows.lock"):
            # Merge-on-replace: drop the cached snapshot so the merge base
            # is the store as concurrent writers left it, not as this
            # process last saw it.
            self._row_table, self._row_index = None, None
            table, index = self._load_rows()
            merged: dict[str, dict[str, Any]] = {}
            if table is not None:
                for key, position in index.items():
                    merged[key] = table.row(position)
            merged.update(fresh)
            keys = list(merged)
            new_table = RecordTable.from_dicts(merged[key] for key in keys)
            new_index = {key: position for position, key in enumerate(keys)}
            new_table.save(self._rows_path())
            atomic_write_text(
                self._rows_index_path(), json.dumps(new_index, separators=(",", ":"))
            )
            self._row_table, self._row_index = new_table, new_index
            self._maybe_inject_corruption()

    def _maybe_inject_corruption(self) -> None:
        """``cache-corrupt`` hook: truncate the just-written row store.

        Fires only under an armed :class:`~repro.resilience.faults.FaultPlan`
        (``REPRO_FAULTS``); the torn arena must read back as a miss —
        quarantined aside on the next load — never as an error, which is
        exactly what the chaos suite asserts.
        """
        from ..resilience.faults import resolve_fault_plan

        plan = resolve_fault_plan(None)
        if plan is None or not plan.fire("cache-corrupt", "rows-store"):
            return
        path = self._rows_path()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # Drop the in-memory handle so this process re-reads the torn file
        # (and takes the quarantine path) just like a fresh process would.
        self._row_table, self._row_index = None, None

    def stats(self) -> str:
        """One-line human-readable hit/miss summary."""
        return f"{self.hits} hits / {self.misses} misses ({self.directory})"

    def row_stats(self) -> str:
        """One-line row-granularity summary (cached vs freshly simulated)."""
        return f"{self.rows_cached} rows cached / {self.rows_fresh} rows fresh"


class InMemoryRowCache:
    """A process-local :class:`RowCache` with no persistence.

    :func:`repro.experiments.suite.run_suite` uses one per run when no cache
    directory is configured: overlapping figures still dedup shared
    instances within the run, nothing touches disk.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.rows_cached = 0
        self.rows_fresh = 0
        self._rows: dict[str, dict[str, Any]] = {}

    def get_rows(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        return {key: dict(self._rows[key]) for key in keys if key in self._rows}

    def count_cached(self, keys: Sequence[str]) -> int:
        return sum(1 for key in keys if key in self._rows)

    def put_rows(self, pairs: Iterable[tuple[str, Mapping[str, Any]]]) -> None:
        for key, record in pairs:
            self._rows[key] = dict(record)

    def row_stats(self) -> str:
        return f"{self.rows_cached} rows cached / {self.rows_fresh} rows fresh"
