"""Experiment harness: sweeps, metrics and per-figure reproductions."""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    register_backend,
    SerialBackend,
    SharedMemoryBackend,
    dispatch_payload_stats,
    resolve_backend,
    result_payload_stats,
)
from .config import DEFAULT_MEMORY_FACTORS, PAPER_HEURISTICS, SweepConfig
from .figures import FIGURES, FigureResult, run_figure
from .records import RECORD_FIELDS, RecordTable, ResultCache, records_equal
from .metrics import (
    completion_fraction,
    decile_band,
    group_by,
    mean,
    median,
    quantile,
    safe_ratio,
    series_over,
    speedup_records,
)
from .reporting import (
    format_records_table,
    format_series_table,
    quantize_x,
    read_records_csv,
    write_records_csv,
    write_series_csv,
)
from .runner import InstanceContext, prepare_instance, run_instance, run_single, run_sweep
from .suite import run_suite, write_suite_report

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "register_backend",
    "SerialBackend",
    "SharedMemoryBackend",
    "dispatch_payload_stats",
    "resolve_backend",
    "result_payload_stats",
    "DEFAULT_MEMORY_FACTORS",
    "PAPER_HEURISTICS",
    "SweepConfig",
    "FIGURES",
    "FigureResult",
    "run_figure",
    "RECORD_FIELDS",
    "RecordTable",
    "ResultCache",
    "records_equal",
    "completion_fraction",
    "decile_band",
    "group_by",
    "mean",
    "median",
    "quantile",
    "safe_ratio",
    "series_over",
    "speedup_records",
    "format_records_table",
    "format_series_table",
    "quantize_x",
    "read_records_csv",
    "write_records_csv",
    "write_series_csv",
    "InstanceContext",
    "prepare_instance",
    "run_instance",
    "run_single",
    "run_sweep",
    "run_suite",
    "write_suite_report",
]
