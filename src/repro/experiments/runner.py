"""Execution engine for experiment sweeps.

:func:`run_sweep` simulates every (tree, memory factor, processor count,
heuristic) combination of a :class:`~repro.experiments.config.SweepConfig`
and returns one flat record per simulation, collected in a columnar
:class:`~repro.experiments.records.RecordTable` (which also behaves as a
read-only sequence of plain ``dict`` records, the historical output format).
Records carry everything the figures need: the normalised makespan, the
peak/booked memory, the scheduling time and the instance characteristics.

The per-tree normalisations follow Section 7.2:

* the memory bound of a run is ``factor x minimum memory`` where the minimum
  memory is the sequential peak of the tree's memory-minimising postorder;
* makespans are normalised by the *best* lower bound — the maximum of the
  classical bound and the memory-aware bound of Theorem 3.

Parallel execution
------------------
The cartesian sweep is embarrassingly parallel, and the paper's campaigns
(Figures 2–15) multiply trees x memory factors x processor counts x
heuristics into thousands of simulations.  *How* the instances execute is
delegated to the pluggable backends of
:mod:`repro.experiments.backends`: in-process (``"serial"``), one pickled
tree per pool task (``"process"``, the historical ``jobs=N`` behaviour) or
zero-copy shared-memory transfer with instance-granularity scheduling
(``"shared-memory"``).  All backends place their records through the same
deterministic instance-keyed merge, so the output is identical — order and
values, wall-clock ``scheduling_seconds`` measurements aside — whichever
backend (and worker count) ran the sweep.
"""

from __future__ import annotations

import math
import weakref
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..bounds.makespan import LowerBounds
from ..core.task_tree import TaskTree
from ..core.tree_metrics import critical_path_length, height
from ..orders import ORDER_FACTORIES, Ordering, minimum_memory_postorder, sequential_peak_memory
from ..schedulers import SCHEDULER_FACTORIES, SimWorkspace, validate_schedule
from .config import SweepConfig
from .metrics import safe_ratio
from .records import RecordTable

__all__ = [
    "run_sweep",
    "run_single",
    "resilient_run_single",
    "run_instance",
    "complete_record",
    "quarantine_record",
    "canonical_combos",
    "prepare_instance",
    "InstanceContext",
]


#: Process-local memo of per-tree derived data keyed by tree *identity*:
#: ``{id(tree): {"order:<name>": Ordering, "minimum_memory": float}}``.
#: Orders are immutable (read-only sequence/rank arrays) so sharing them
#: between contexts is safe.  Sweeping the same trees under several
#: configurations (the AO/EO-choice figures run six configs over one
#: dataset) therefore computes each ordering — OptSeq in particular is the
#: costliest pre-computation of the harness — exactly once per tree.
#: Workers inherit an empty memo and fill their own, which preserves
#: determinism: memoisation only skips recomputation of values that are
#: pure functions of the tree.
#:
#: ``id`` keying (with a ``weakref.finalize`` evicting the entry when the
#: tree is collected, before its id can be reused) is deliberate:
#: ``TaskTree.__hash__`` hashes every node array, which would make each
#: memo *lookup* O(n) under a ``WeakKeyDictionary``.
_TREE_MEMO: dict[int, dict[str, Any]] = {}


def _tree_memo(tree: TaskTree) -> dict[str, Any]:
    key = id(tree)
    memo = _TREE_MEMO.get(key)
    if memo is None:
        memo = _TREE_MEMO[key] = {}
        weakref.finalize(tree, _TREE_MEMO.pop, key, None)
    return memo


class InstanceContext:
    """Per-tree data shared by every run on that tree.

    Besides the orders and the Section 7.2 minimum memory this now carries
    the whole *static simulation plane* of the tree: the
    :class:`~repro.schedulers.engine.SimWorkspace` (children CSR, AO/EO
    ranks, activation request/release planes) every run's kernels read, and
    the tree-pure ingredients of the makespan lower bounds (critical path,
    total work, memory-time demand) that used to be recomputed for every
    (processors, factor, heuristic) combination.

    ``planes`` — the workspace plane columns of a
    :class:`~repro.core.tree_store.TreeStore` arena (see
    :mod:`repro.batch.planes`) — short-circuits every derivation: the
    orders, the scalars and the workspace are adopted from the stored
    arrays instead of recomputed, which is how shared-memory workers
    inherit the static planes zero-copy instead of re-deriving them per
    process.  The stored values were produced by this very code path in the
    publishing process, so a plane-built context is indistinguishable from
    a computed one.
    """

    def __init__(
        self,
        tree: TaskTree,
        index: int,
        config: SweepConfig,
        planes: "Mapping[str, Any] | None" = None,
    ) -> None:
        if planes is None:
            # Plane columns seeded by the workload cache (keyed by the exact
            # (AO, EO) name pair, see ``WorkloadCache.fetch``); a sweep under
            # any other order pair misses and derives from scratch below.
            planes = _tree_memo(tree).get(
                f"planes:{config.activation_order}:{config.execution_order}"
            )
        if planes is not None:
            self._init_from_planes(tree, index, config, planes)
            return
        self.tree = tree
        self.index = index
        self.height = height(tree)
        self.ao = _make_order(tree, config.activation_order)
        self.eo = (
            self.ao
            if config.execution_order == config.activation_order
            else _make_order(tree, config.execution_order)
        )
        # "Minimum memory" of Section 7.2: peak of the memory-minimising
        # postorder (independent of the AO/EO actually used for scheduling).
        memo = _tree_memo(tree)
        minimum = memo.get("minimum_memory")
        if minimum is None:
            if config.activation_order == "memPO":
                reference_order = self.ao
            else:
                reference_order = minimum_memory_postorder(tree)
            minimum = sequential_peak_memory(tree, reference_order, check=False)
            memo["minimum_memory"] = minimum
        self.minimum_memory = minimum
        # Tree-pure lower-bound ingredients (Section 6): the critical path
        # and the memory-time demand of Theorem 3 do not depend on (p, M),
        # so computing them per run wasted an O(n) pass per record.
        critical_path = memo.get("critical_path")
        if critical_path is None:
            critical_path = memo["critical_path"] = critical_path_length(tree)
        self.critical_path = critical_path
        demand = memo.get("memtime_demand")
        if demand is None:
            demand = memo["memtime_demand"] = float(np.dot(tree.mem_needed, tree.ptime))
        self.memtime_demand = demand
        self.total_work = tree.total_work
        # Static simulation planes, shared by every run on this instance.
        self.workspace = SimWorkspace(tree, self.ao, self.eo)

    def _init_from_planes(
        self,
        tree: TaskTree,
        index: int,
        config: SweepConfig,
        planes: "Mapping[str, Any]",
    ) -> None:
        """Adopt arena-resident workspace planes instead of recomputing."""
        self.tree = tree
        self.index = index
        scalars = planes["ws:scalars"]
        self.height = int(scalars[3])
        ao_name = config.activation_order
        eo_name = config.execution_order
        self.ao = Ordering(planes["ws:ao_sequence"], name=ao_name)
        self.eo = (
            self.ao
            if eo_name == ao_name
            else Ordering(planes["ws:eo_sequence"], name=eo_name)
        )
        self.minimum_memory = float(scalars[0])
        self.critical_path = float(scalars[1])
        self.memtime_demand = float(scalars[2])
        self.total_work = tree.total_work
        self.workspace = SimWorkspace.from_planes(
            tree,
            self.ao,
            self.eo,
            child_offsets=planes["ws:child_offsets"],
            child_nodes=planes["ws:child_nodes"],
            request_ao=planes["ws:request_ao"],
            release=planes["ws:release"],
            ao_rank=planes["ws:ao_rank"],
            eo_rank=planes["ws:eo_rank"],
        )


def _make_order(tree: TaskTree, name: str) -> Ordering:
    try:
        factory = ORDER_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown ordering {name!r}; available: {sorted(ORDER_FACTORIES)}") from None
    memo = _tree_memo(tree)
    key = f"order:{name}"
    order = memo.get(key)
    if order is None:
        order = memo[key] = factory(tree)
    return order


def prepare_instance(
    tree: TaskTree,
    index: int,
    config: SweepConfig,
    planes: "Mapping[str, Any] | None" = None,
) -> InstanceContext:
    """Precompute the orders and minimum memory of one tree.

    ``planes`` (the workspace plane columns of a ``TreeStore`` arena, see
    :mod:`repro.batch.planes`) adopts the stored derivations instead of
    recomputing them.
    """
    return InstanceContext(tree, index, config, planes)


def complete_record(
    context: InstanceContext,
    scheduler_name: str,
    num_processors: int,
    memory_factor: float,
    config: SweepConfig,
    result,
    *,
    run_validation: bool = True,
) -> dict[str, Any]:
    """Validate a :class:`~repro.schedulers.base.ScheduleResult` and build its record.

    This is the single definition of "simulation outcome -> sweep record":
    :func:`run_single` feeds it the scalar schedulers' results and the
    batched backend (:mod:`repro.batch`) feeds it lane results, so the two
    paths cannot diverge on record contents.  ``run_validation=False`` lets
    the batched backend skip re-validating a collapsed lane whose identical
    schedule was already validated through its representative.
    """
    tree = context.tree
    memory_limit = memory_factor * context.minimum_memory
    if run_validation and config.validate and result.completed:
        validate_schedule(tree, result).raise_if_invalid()
    # Same values as ``repro.bounds.lower_bounds`` with the tree-pure parts
    # (critical path, memory-time demand) read from the per-tree context.
    bounds = LowerBounds(
        work_bound=context.total_work / num_processors,
        critical_path_bound=context.critical_path,
        memory_bound=context.memtime_demand / float(memory_limit),
    )
    record: dict[str, Any] = {
        "tree_index": context.index,
        "tree_size": tree.n,
        "tree_height": context.height,
        "scheduler": scheduler_name,
        "num_processors": num_processors,
        "memory_factor": memory_factor,
        "memory_limit": memory_limit,
        "minimum_memory": context.minimum_memory,
        "completed": result.completed,
        "makespan": result.makespan,
        "lower_bound": bounds.combined,
        "classical_lower_bound": bounds.classical,
        "memory_lower_bound": bounds.memory_bound,
        "normalized_makespan": safe_ratio(result.makespan, bounds.combined),
        "peak_memory": result.peak_memory,
        "memory_fraction": safe_ratio(result.peak_memory, memory_limit),
        "scheduling_seconds": result.scheduling_seconds,
        "scheduling_seconds_per_node": result.scheduling_seconds / max(tree.n, 1),
        "activation_order": config.activation_order,
        "execution_order": config.execution_order,
        "failure_reason": result.failure_reason,
    }
    return record


def run_single(
    context: InstanceContext,
    scheduler_name: str,
    num_processors: int,
    memory_factor: float,
    config: SweepConfig,
) -> dict[str, Any]:
    """Run one heuristic on one instance and return its flat record."""
    memory_limit = memory_factor * context.minimum_memory

    def simulate():
        scheduler = SCHEDULER_FACTORIES[scheduler_name]()
        scheduler.native = config.native
        return scheduler.schedule(
            context.tree,
            num_processors,
            memory_limit,
            ao=context.ao,
            eo=context.eo,
            workspace=context.workspace,
        )

    result = simulate()
    # Timing figures re-run the (deterministic) simulation and keep the
    # fastest wall-clock per cell, so committed timing artifacts are stable
    # across regenerations; every value field comes from the first run.
    for _ in range(config.timing_repetitions - 1):
        result.scheduling_seconds = min(
            result.scheduling_seconds, simulate().scheduling_seconds
        )
    return complete_record(
        context, scheduler_name, num_processors, memory_factor, config, result
    )


class _QuarantinedResult:
    """Stand-in :class:`~repro.schedulers.base.ScheduleResult` of an
    instance that exhausted its retry budget: nothing ran, so there is no
    schedule and no makespan — only the failure reason."""

    completed = False
    makespan = math.inf
    peak_memory = 0.0
    scheduling_seconds = 0.0

    def __init__(self, reason: str) -> None:
        self.failure_reason = reason


def quarantine_record(
    context: InstanceContext,
    scheduler_name: str,
    num_processors: int,
    memory_factor: float,
    config: SweepConfig,
    reason: str,
) -> dict[str, Any]:
    """The record of a poison instance, routed into the failure plane.

    Built through :func:`complete_record` so a quarantined row carries the
    same per-instance characteristics (sizes, bounds, limits) as every
    other record and lands in the canonical schema — only ``completed``,
    ``makespan`` and ``failure_reason`` mark it.  ``reason`` must start
    with :data:`repro.resilience.faults.QUARANTINE_PREFIX` so the cache
    layer can refuse to persist it.
    """
    return complete_record(
        context,
        scheduler_name,
        num_processors,
        memory_factor,
        config,
        _QuarantinedResult(reason),
        run_validation=False,
    )


def resilient_run_single(
    context: InstanceContext,
    scheduler_name: str,
    num_processors: int,
    memory_factor: float,
    config: SweepConfig,
    faults: "Any | None" = None,
) -> dict[str, Any]:
    """:func:`run_single` under the fault harness: transient-OSError retry.

    With no active :class:`~repro.resilience.faults.FaultPlan` this is a
    direct tail call — the fault-free hot path pays one ``None`` check.
    With a plan, an injected (or genuine) :class:`OSError` from the
    simulation is retried in place under the plan's bounded backoff
    budget; exhaustion quarantines the instance via
    :func:`quarantine_record` instead of failing the sweep.  Used by the
    serial backend, the batched backend's scalar path and both pool
    backends' workers, so transient faults behave identically everywhere.
    """
    if faults is None:
        return run_single(context, scheduler_name, num_processors, memory_factor, config)
    from ..resilience.faults import instance_fault_key
    from ..resilience.health import current_health
    from ..resilience.recovery import retry_sleep

    key = instance_fault_key(context.index, scheduler_name, num_processors, memory_factor)
    attempt = 0
    while True:
        try:
            faults.maybe_raise("os-transient", key, attempt=attempt)
            return run_single(
                context, scheduler_name, num_processors, memory_factor, config
            )
        except OSError as exc:
            attempt += 1
            health = current_health()
            if attempt >= faults.max_attempts:
                health.quarantined_instances += 1
                return quarantine_record(
                    context,
                    scheduler_name,
                    num_processors,
                    memory_factor,
                    config,
                    f"quarantined after {attempt} attempts: {exc}",
                )
            health.retries += 1
            retry_sleep(faults.backoff, attempt)


def canonical_combos(config: SweepConfig) -> list[tuple[str, int, float]]:
    """The canonical per-tree (scheduler, processors, factor) enumeration.

    Exactly the order :func:`run_instance` (and the plan layer's
    ``iter_instances``) uses within one tree — processors outer, memory
    factors, schedulers inner — so callers re-materialising a "full tree"
    dispatch reproduce the serial record order.
    """
    return [
        (scheduler_name, num_processors, memory_factor)
        for num_processors in config.processors
        for memory_factor in config.memory_factors
        for scheduler_name in config.schedulers
    ]


def run_instance(tree: TaskTree, index: int, config: SweepConfig) -> list[dict[str, Any]]:
    """Run every (processors, factor, heuristic) combination on one tree.

    The :class:`InstanceContext` (orders, minimum memory) is computed once
    and shared by all the runs on the tree.  This is the unit of work of the
    parallel sweep: shipping whole trees to the workers keeps that caching
    intact while the order-preserving merge keeps the records deterministic.
    """
    context = prepare_instance(tree, index, config)
    return [
        run_single(context, scheduler_name, num_processors, memory_factor, config)
        for num_processors in config.processors
        for memory_factor in config.memory_factors
        for scheduler_name in config.schedulers
    ]


def _run_instance_star(
    payload: "tuple[int, TaskTree, SweepConfig, Sequence[tuple[str, int, float]] | None]",
) -> list[dict[str, Any]]:
    """Module-level pool target (picklable under every start method).

    ``combos`` selects which (scheduler, processors, factor) rows of the
    tree to simulate — ``None`` means the full canonical per-tree set (a
    full-plan dispatch); a subset plan ships the explicit list.
    """
    index, tree, config, combos = payload
    if combos is None:
        return run_instance(tree, index, config)
    context = prepare_instance(tree, index, config)
    return [
        run_single(context, scheduler_name, num_processors, memory_factor, config)
        for scheduler_name, num_processors, memory_factor in combos
    ]


def _run_tree_task(
    payload: "tuple[int, TaskTree, SweepConfig, Sequence[tuple[str, int, float]] | None, int]",
) -> tuple[int, list[dict[str, Any]]]:
    """Identity-carrying pool target of :class:`~repro.experiments.backends.ProcessPoolBackend`.

    Like :func:`_run_instance_star` but returns ``(tree_index, records)``
    so the parent's unordered recovery drain can match results to pending
    tree groups, and runs under the fault harness: the ``attempt`` counter
    in the payload drives the worker-side crash/hang hook (the decision is
    the same pure function the parent previews) and every instance goes
    through :func:`resilient_run_single` for transient-OSError handling.
    """
    tree_index, tree, config, combos, attempt = payload
    from ..resilience.faults import resolve_fault_plan

    faults = resolve_fault_plan(config.fault_plan)
    if faults is not None:
        faults.worker_entry(f"tree:{tree_index}", attempt)
    context = prepare_instance(tree, tree_index, config)
    if combos is None:
        combos = canonical_combos(config)
    return tree_index, [
        resilient_run_single(
            context, scheduler_name, num_processors, memory_factor, config, faults
        )
        for scheduler_name, num_processors, memory_factor in combos
    ]


def _resolve_jobs(jobs: int | None, config: SweepConfig, num_trees: int) -> int:
    """Effective worker count: explicit ``jobs`` wins over ``config.jobs``.

    The validation / CPU-expansion / capping policy itself lives in
    :func:`repro.experiments.backends._worker_count` so every resolution
    path shares one implementation.
    """
    from .backends import _worker_count

    return _worker_count(config.jobs if jobs is None else int(jobs), num_trees)


def run_sweep(
    trees: Sequence[TaskTree] | Iterable[TaskTree],
    config: SweepConfig | None = None,
    *,
    jobs: int | None = None,
    backend: "str | Any | None" = None,
    **overrides,
) -> "RecordTable":
    """Run the full cartesian sweep described by ``config`` over ``trees``.

    Keyword overrides are applied on top of ``config`` (e.g.
    ``run_sweep(trees, processors=(2, 4))``).  The result is a columnar
    :class:`~repro.experiments.records.RecordTable`; iterate it (or call
    ``.to_dicts()``) for the historical list-of-dicts view, or read whole
    columns with ``table.column(name)`` for vectorised post-processing.

    Parameters
    ----------
    jobs:
        Number of worker processes (overrides ``config.jobs`` when given).
        ``1`` runs in-process; ``0`` uses one worker per available CPU.
    backend:
        Execution backend: a name (``"auto"``, ``"serial"``, ``"process"``,
        ``"shared-memory"``) or an
        :class:`~repro.experiments.backends.ExecutionBackend` instance;
        ``None`` defers to ``config.backend`` (default ``"auto"``, which
        keeps the historical behaviour: serial for one worker, the per-tree
        process pool otherwise).  Whatever the backend and worker count, the
        records come back in the serial order with the serial values —
        only the wall-clock ``scheduling_seconds`` measurements differ.
    """
    if config is None:
        config = SweepConfig(**overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    tree_list = list(trees)

    from .backends import resolve_backend

    return resolve_backend(backend, config, len(tree_list), jobs).run(tree_list, config)
