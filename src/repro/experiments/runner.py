"""Execution engine for experiment sweeps.

:func:`run_sweep` simulates every (tree, memory factor, processor count,
heuristic) combination of a :class:`~repro.experiments.config.SweepConfig`
and returns one flat record (plain ``dict``) per simulation.  Records carry
everything the figures need: the normalised makespan, the peak/booked memory,
the scheduling time and the instance characteristics.

The per-tree normalisations follow Section 7.2:

* the memory bound of a run is ``factor x minimum memory`` where the minimum
  memory is the sequential peak of the tree's memory-minimising postorder;
* makespans are normalised by the *best* lower bound — the maximum of the
  classical bound and the memory-aware bound of Theorem 3.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..bounds import lower_bounds
from ..core.task_tree import TaskTree
from ..core.tree_metrics import height
from ..orders import ORDER_FACTORIES, Ordering, minimum_memory_postorder, sequential_peak_memory
from ..schedulers import SCHEDULER_FACTORIES, validate_schedule
from .config import SweepConfig
from .metrics import safe_ratio

__all__ = ["run_sweep", "run_single", "prepare_instance", "InstanceContext"]


class InstanceContext:
    """Per-tree data shared by every run on that tree (orders, minimum memory)."""

    def __init__(self, tree: TaskTree, index: int, config: SweepConfig) -> None:
        self.tree = tree
        self.index = index
        self.height = height(tree)
        self.ao = _make_order(tree, config.activation_order)
        self.eo = (
            self.ao
            if config.execution_order == config.activation_order
            else _make_order(tree, config.execution_order)
        )
        # "Minimum memory" of Section 7.2: peak of the memory-minimising
        # postorder (independent of the AO/EO actually used for scheduling).
        if config.activation_order == "memPO":
            reference_order = self.ao
        else:
            reference_order = minimum_memory_postorder(tree)
        self.minimum_memory = sequential_peak_memory(tree, reference_order, check=False)


def _make_order(tree: TaskTree, name: str) -> Ordering:
    try:
        factory = ORDER_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown ordering {name!r}; available: {sorted(ORDER_FACTORIES)}") from None
    return factory(tree)


def prepare_instance(tree: TaskTree, index: int, config: SweepConfig) -> InstanceContext:
    """Precompute the orders and minimum memory of one tree."""
    return InstanceContext(tree, index, config)


def run_single(
    context: InstanceContext,
    scheduler_name: str,
    num_processors: int,
    memory_factor: float,
    config: SweepConfig,
) -> dict[str, Any]:
    """Run one heuristic on one instance and return its flat record."""
    tree = context.tree
    memory_limit = memory_factor * context.minimum_memory
    scheduler = SCHEDULER_FACTORIES[scheduler_name]()
    result = scheduler.schedule(
        tree, num_processors, memory_limit, ao=context.ao, eo=context.eo
    )
    if config.validate and result.completed:
        validate_schedule(tree, result).raise_if_invalid()
    bounds = lower_bounds(tree, num_processors, memory_limit)
    record: dict[str, Any] = {
        "tree_index": context.index,
        "tree_size": tree.n,
        "tree_height": context.height,
        "scheduler": scheduler_name,
        "num_processors": num_processors,
        "memory_factor": memory_factor,
        "memory_limit": memory_limit,
        "minimum_memory": context.minimum_memory,
        "completed": result.completed,
        "makespan": result.makespan,
        "lower_bound": bounds.combined,
        "classical_lower_bound": bounds.classical,
        "memory_lower_bound": bounds.memory_bound,
        "normalized_makespan": safe_ratio(result.makespan, bounds.combined),
        "peak_memory": result.peak_memory,
        "memory_fraction": safe_ratio(result.peak_memory, memory_limit),
        "scheduling_seconds": result.scheduling_seconds,
        "scheduling_seconds_per_node": result.scheduling_seconds / max(tree.n, 1),
        "activation_order": config.activation_order,
        "execution_order": config.execution_order,
        "failure_reason": result.failure_reason,
    }
    return record


def run_sweep(
    trees: Sequence[TaskTree] | Iterable[TaskTree],
    config: SweepConfig | None = None,
    **overrides,
) -> list[dict[str, Any]]:
    """Run the full cartesian sweep described by ``config`` over ``trees``.

    Keyword overrides are applied on top of ``config`` (e.g.
    ``run_sweep(trees, processors=(2, 4))``).
    """
    if config is None:
        config = SweepConfig(**overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    records: list[dict[str, Any]] = []
    for index, tree in enumerate(trees):
        context = prepare_instance(tree, index, config)
        for num_processors in config.processors:
            for memory_factor in config.memory_factors:
                for scheduler_name in config.schedulers:
                    records.append(
                        run_single(context, scheduler_name, num_processors, memory_factor, config)
                    )
    return records
