"""Client side of the resident scheduler service.

:class:`ServiceClient` holds one persistent connection to a running
``memtree serve`` daemon and wraps each request kind in a method.  The
connection is lazy (opened on first request) and sticky: a warm client
pays one socket round-trip per query, which is the whole point of the
service — ``benchmarks/test_service_speed.py`` gates that a warm
``schedule`` round-trip beats a cold ``memtree schedule`` process start by
an order of magnitude.

Addresses: a string containing ``/`` (or naming an existing filesystem
path) is an ``AF_UNIX`` socket path; ``host:port`` or a bare port number
is TCP.  ``memtree serve`` prints the address it bound in exactly these
forms.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..experiments.records import RecordTable
from .protocol import (
    FRAME_JSON,
    FRAME_ROWS,
    ProtocolError,
    decode_payload,
    recv_frame,
    send_json,
)

__all__ = ["ServiceClient", "RemoteError", "parse_address"]


class RemoteError(RuntimeError):
    """The daemon quarantined the request; carries its error object."""

    def __init__(self, error: Mapping[str, Any]) -> None:
        self.error = dict(error)
        super().__init__(
            f"{error.get('type', 'Error')}: {error.get('message', '')} "
            f"(request {error.get('request', '?')!r})"
        )


def parse_address(address: "str | Path") -> tuple[int, Any]:
    """``(family, connect_arg)`` for an address string.

    ``AF_UNIX`` when the string looks like a path (contains ``/`` or exists
    on disk), TCP otherwise (``host:port``, or a bare port on localhost).
    """
    text = str(address)
    if "/" in text or Path(text).exists():
        return socket.AF_UNIX, text
    host, _, port = text.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"not a socket path or host:port address: {text!r}")
    return socket.AF_INET, (host or "127.0.0.1", int(port))


class ServiceClient:
    """One persistent connection to a ``memtree serve`` daemon."""

    def __init__(self, address: "str | Path", *, timeout: float | None = 300.0) -> None:
        self.address = str(address)
        self.timeout = timeout
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------ #
    # connection lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> None:
        if self._sock is not None:
            return
        family, target = parse_address(self.address)
        sock = socket.socket(family, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(target)
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            sock.close()

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the request core
    # ------------------------------------------------------------------ #
    def request(
        self,
        kind: str,
        *,
        on_rows: Callable[[RecordTable], None] | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Send one request and return the terminal JSON payload.

        ``R`` row-batch frames arriving before the terminal ``J`` frame are
        handed to ``on_rows`` as reconstructed
        :class:`~repro.experiments.records.RecordTable` batches.  Raises
        :class:`RemoteError` when the daemon reports ``"ok": false``.
        """
        self.connect()
        sock = self._sock
        assert sock is not None
        send_json(sock, {"kind": kind, **params})
        while True:
            frame = recv_frame(sock)
            if frame is None:
                self.close()
                raise ProtocolError("daemon closed the connection mid-response")
            frame_kind, payload = frame
            if frame_kind == FRAME_ROWS:
                if on_rows is not None:
                    on_rows(RecordTable(payload))
                continue
            assert frame_kind == FRAME_JSON
            response = decode_payload(payload)
            if not response.get("ok", False):
                raise RemoteError(response.get("error", {}))
            return response

    # ------------------------------------------------------------------ #
    # request wrappers
    # ------------------------------------------------------------------ #
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def load(
        self,
        dataset_kind: str,
        scale: str = "tiny",
        *,
        seed: int | None = None,
        name: str | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"dataset_kind": dataset_kind, "scale": scale}
        if seed is not None:
            params["seed"] = seed
        if name is not None:
            params["name"] = name
        return self.request("load", **params)

    def evict(self, name: str) -> dict[str, Any]:
        return self.request("evict", name=name)

    def schedule(self, **params: Any) -> dict[str, Any]:
        """One instance; returns the full record dict (see the server docs)."""
        response = self.request("schedule", **params)
        return response["record"]

    def sweep(
        self,
        dataset: str,
        *,
        schedulers: Sequence[str] = ("MemBooking",),
        processors: Iterable[int] = (8,),
        memory_factors: Iterable[float] = (2.0,),
        rows: Sequence[int] | None = None,
        **params: Any,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Run a sweep; returns ``(records, stats)`` with records in plan order."""
        records: list[dict[str, Any]] = []
        request: dict[str, Any] = {
            "dataset": dataset,
            "schedulers": list(schedulers),
            "processors": list(processors),
            "memory_factors": list(memory_factors),
            **params,
        }
        if rows is not None:
            request["rows"] = list(rows)
        stats = self.request(
            "sweep", on_rows=lambda batch: records.extend(batch.to_dicts()), **request
        )
        return records, stats

    def shutdown_server(self) -> dict[str, Any]:
        """Ask the daemon to shut down cleanly (the SIGTERM path, over the wire)."""
        try:
            return self.request("shutdown")
        finally:
            self.close()
