"""Wire protocol of the resident scheduler service.

The service speaks length-prefixed frames over a stream socket (an
``AF_UNIX`` path or TCP on localhost).  Every frame is::

    1 byte   frame kind
    4 bytes  payload length, unsigned big-endian
    ...      payload

Two frame kinds exist:

``J`` (:data:`FRAME_JSON`)
    A UTF-8 JSON object.  Requests are always single ``J`` frames carrying
    at least a ``"kind"`` field; most responses are a single ``J`` frame
    with ``"ok": true`` plus the result, or ``"ok": false`` plus an
    ``"error"`` object when the request was quarantined.  The JSON dialect
    is Python's (``Infinity``/``NaN`` tokens allowed): schedule records
    legitimately carry ``inf`` makespans and ``nan`` ratios for infeasible
    instances, and both ends of the wire are this module.

``R`` (:data:`FRAME_ROWS`)
    A raw :class:`~repro.experiments.records.RecordTable` arena
    (:meth:`~repro.experiments.records.RecordTable.to_bytes`) carrying one
    batch of sweep result rows.  The arena is self-describing (versioned
    header + embedded schema), so the client needs no out-of-band schema —
    ``RecordTable(payload)`` reconstructs the batch exactly.  A ``sweep``
    response streams zero or more ``R`` frames followed by a terminal ``J``
    frame with the run statistics, so a client renders rows incrementally
    while the daemon is still simulating the tail of the plan.

One serializer for CLI and wire: :func:`encode_payload` /
:func:`payload_text` produce the canonical JSON encoding used both for
``J`` frames and for the machine-readable stdout of ``memtree schedule
--json`` and ``memtree figure --dry-run --json`` — a consumer can parse
the CLI output and the wire with the same code.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Mapping

__all__ = [
    "FRAME_JSON",
    "FRAME_ROWS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_payload",
    "payload_text",
    "decode_payload",
    "send_frame",
    "send_json",
    "recv_frame",
]

#: Bumped on any incompatible framing/request-shape change; the server
#: reports it in ``status`` and rejects requests pinning a newer version.
PROTOCOL_VERSION = 1

FRAME_JSON = b"J"
FRAME_ROWS = b"R"

#: frame kind (1 byte) + payload length (u32, network order)
_FRAME_HEADER = struct.Struct("!cI")

#: Upper bound on a single frame; a header announcing more than this is
#: treated as stream corruption, not an allocation request.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(ConnectionError):
    """The stream ended mid-frame or carried an unparsable frame."""


# --------------------------------------------------------------------------- #
# the one JSON serializer (CLI --json output and J frames)
# --------------------------------------------------------------------------- #
def payload_text(payload: Mapping[str, Any]) -> str:
    """Canonical JSON text of a payload (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_payload(payload: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes of a payload (the ``J`` frame body)."""
    return payload_text(payload).encode("utf-8")


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse a ``J`` frame body back into a dict."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparsable JSON frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("JSON frame must carry an object")
    return payload


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, kind: bytes, payload: bytes) -> None:
    """Write one ``kind`` frame carrying ``payload``."""
    if len(kind) != 1:
        raise ValueError("frame kind must be a single byte")
    sock.sendall(_FRAME_HEADER.pack(kind, len(payload)) + payload)


def send_json(sock: socket.socket, payload: Mapping[str, Any]) -> None:
    """Write one ``J`` frame carrying ``payload``."""
    send_frame(sock, FRAME_JSON, encode_payload(payload))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if chunks:
                raise ProtocolError("stream ended mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[bytes, bytes] | None:
    """Read one ``(kind, payload)`` frame; ``None`` on clean EOF.

    EOF *inside* a frame (header or payload) raises :class:`ProtocolError`
    — a peer that died mid-send must never be mistaken for a clean close.
    """
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    kind, length = _FRAME_HEADER.unpack(header)
    if kind not in (FRAME_JSON, FRAME_ROWS):
        raise ProtocolError(f"unknown frame kind {kind!r}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol maximum")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("stream ended mid-frame")
    return kind, payload
