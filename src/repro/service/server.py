"""The resident scheduler service: warm state, request handlers, daemon loop.

Two classes split the subsystem:

* :class:`SchedulerService` — the state and the request handlers, socket
  free (tests drive it directly).  It keeps datasets resident (generated or
  mmap-loaded once through the
  :class:`~repro.workloads.datasets.WorkloadCache`, then served from
  memory), keeps the per-tree :class:`~repro.experiments.runner.InstanceContext`
  memo warm (orders, minimum memory, :class:`~repro.schedulers.engine.SimWorkspace`
  — the expensive O(n) derivations a cold ``memtree schedule`` pays on
  every invocation), and owns one :class:`~repro.experiments.records.ResultCache`
  handle shared by every ``sweep`` request.
* :class:`SchedulerDaemon` — the socket loop: binds an ``AF_UNIX`` path or
  a localhost TCP port, serves each connection on its own thread, and
  tears everything down cleanly on ``stop()`` (SIGTERM in the CLI).

Failure semantics follow the PR 9 ladder: a request that raises is
**quarantined per request** — the client gets ``{"ok": false, "error":
{...}}`` and the daemon keeps serving; only protocol-level corruption
(unparsable frame, EOF mid-frame) closes the offending *connection*.  The
daemon process itself never dies on a request.

Concurrency model: connections are concurrent (thread per connection) but
**execution is serialised** through one lock.  Simulation is CPU-bound pure
Python, so concurrent threads would only interleave under the GIL without
finishing sooner — while serialising makes the shared caches and per-tree
memos trivially race free and guarantees two clients sweeping overlapping
plans never double-compute a row: the second sweep enters the lock after
the first published its rows and reads them back as cache hits.
Cross-*process* safety of the row store is separate and unconditional: the
:class:`~repro.resilience.locks.FileLock` inside
:meth:`~repro.experiments.records.ResultCache.put_rows`.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..core.task_tree import TaskTree
from ..core.tree_io import from_dict
from ..experiments.config import SweepConfig
from ..experiments.plan import SweepPlan, execute_plan_cached, tree_content_sha
from ..experiments.records import InMemoryRowCache, RecordTable, ResultCache
from ..experiments.runner import prepare_instance, run_single
from ..experiments.specs import load_dataset as load_named_dataset
from ..resilience.health import current_health
from ..workloads.datasets import WorkloadCache
from .metrics import ServiceMetrics
from .protocol import (
    FRAME_JSON,
    FRAME_ROWS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)

__all__ = ["SchedulerService", "SchedulerDaemon", "ServiceError", "DEFAULT_DATASET_SEEDS"]

#: Default seed per dataset kind — the generators' own defaults, so
#: ``load synthetic:tiny`` resolves to the exact datasets the figures use.
DEFAULT_DATASET_SEEDS = {"synthetic": 7011, "assembly": 2017, "heavyleaf": 4099, "height": 99}

#: Rows per streamed ``R`` frame of a sweep response (overridable per
#: request with ``"batch_rows"``): small enough that a client renders
#: progress while a long plan still runs, large enough that frame overhead
#: is noise.
STREAM_BATCH_ROWS = 256


class ServiceError(RuntimeError):
    """A malformed or unsatisfiable request (reported to the client, never fatal)."""


@dataclass
class _ResidentDataset:
    """One dataset held in memory: the trees plus their load descriptor."""

    name: str
    trees: list[TaskTree]
    descriptor: dict[str, Any]
    loaded_at: float = field(default_factory=time.monotonic)

    def summary(self) -> dict[str, Any]:
        return {
            "trees": len(self.trees),
            "total_nodes": int(sum(tree.n for tree in self.trees)),
            **self.descriptor,
        }


class SchedulerService:
    """Request handlers over resident datasets, warm contexts and caches."""

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        workload_cache_dir: str | Path | None = None,
        native: bool | None = None,
    ) -> None:
        self.cache: ResultCache | InMemoryRowCache = (
            ResultCache(cache_dir) if cache_dir is not None else InMemoryRowCache()
        )
        self.workload_cache = (
            WorkloadCache(workload_cache_dir) if workload_cache_dir is not None else None
        )
        self.native = native
        self.metrics = ServiceMetrics()
        self.datasets: dict[str, _ResidentDataset] = {}
        self.started_at = time.monotonic()
        #: Warm per-instance contexts keyed by (tree sha, index, AO, EO);
        #: bounded FIFO so inline one-shot trees cannot grow it unboundedly.
        self._contexts: dict[tuple[str, int, str, str], Any] = {}
        self._context_cap = 1024
        self._dataset_memo: dict[tuple[str, str, int], list[TaskTree]] = {}
        #: Serialises every simulating/state-mutating request (see the
        #: module docstring for why this is the right concurrency model).
        self._exec_lock = threading.Lock()
        self._handlers = {
            "ping": self._handle_ping,
            "status": self._handle_status,
            "load": self._handle_load,
            "evict": self._handle_evict,
            "schedule": self._handle_schedule,
            "sweep": self._handle_sweep,
        }

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def handle(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        """Yield the response frames of one request.

        Every response is zero or more ``R`` row-batch frames followed by
        exactly one terminal ``J`` frame.  Any exception a handler raises
        is quarantined into an ``{"ok": false, "error": ...}`` terminal
        frame — the service survives every request.
        """
        kind = str(request.get("kind", ""))
        start = time.perf_counter()
        error = False
        try:
            handler = self._handlers.get(kind)
            if handler is None:
                raise ServiceError(
                    f"unknown request kind {kind!r}; expected one of "
                    f"{sorted(self._handlers)}"
                )
            yield from handler(request)
        except Exception as exc:
            error = True
            yield (
                FRAME_JSON,
                encode_payload(
                    {
                        "ok": False,
                        "error": {
                            "request": kind,
                            "type": type(exc).__name__,
                            "message": str(exc),
                        },
                    }
                ),
            )
        finally:
            self.metrics.observe(kind or "<missing>", time.perf_counter() - start, error=error)

    # ------------------------------------------------------------------ #
    # lifecycle requests
    # ------------------------------------------------------------------ #
    def _handle_ping(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        yield FRAME_JSON, encode_payload({"ok": True, "protocol": PROTOCOL_VERSION})

    def _handle_status(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        cache = self.cache
        payload: dict[str, Any] = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self.started_at,
            "datasets": {name: ds.summary() for name, ds in sorted(self.datasets.items())},
            "cache": {
                "kind": type(cache).__name__,
                "directory": str(cache.directory) if isinstance(cache, ResultCache) else None,
                "hits": cache.hits,
                "misses": cache.misses,
                "rows_cached": cache.rows_cached,
                "rows_fresh": cache.rows_fresh,
            },
            "warm_contexts": len(self._contexts),
            "metrics": self.metrics.snapshot(),
            "health": current_health().as_dict(),
            "native": self.native,
        }
        if self.workload_cache is not None:
            payload["workload_cache"] = {
                "directory": str(self.workload_cache.directory),
                "hits": self.workload_cache.hits,
                "misses": self.workload_cache.misses,
            }
        yield FRAME_JSON, encode_payload(payload)

    def load_dataset(
        self, kind: str, scale: str, seed: int | None = None, name: str | None = None
    ) -> tuple[str, bool]:
        """Make a dataset resident; returns ``(name, was_already_loaded)``."""
        if seed is None:
            seed = DEFAULT_DATASET_SEEDS.get(kind)
            if seed is None:
                raise ServiceError(f"unknown dataset kind {kind!r} needs an explicit seed")
        name = name or f"{kind}:{scale}"
        with self._exec_lock:
            existing = self.datasets.get(name)
            descriptor = {"dataset_kind": kind, "scale": scale, "seed": int(seed)}
            if existing is not None and existing.descriptor == descriptor:
                return name, True
            trees = load_named_dataset(
                kind, scale, int(seed), self.workload_cache, self._dataset_memo
            )
            self.datasets[name] = _ResidentDataset(name, list(trees), descriptor)
        return name, False

    def _handle_load(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        kind = str(request.get("dataset_kind", ""))
        scale = str(request.get("scale", "tiny"))
        seed = request.get("seed")
        name, already = self.load_dataset(
            kind, scale, None if seed is None else int(seed), request.get("name")
        )
        dataset = self.datasets[name]
        yield (
            FRAME_JSON,
            encode_payload(
                {"ok": True, "name": name, "already_loaded": already, **dataset.summary()}
            ),
        )

    def _handle_evict(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        name = str(request.get("name", ""))
        with self._exec_lock:
            dataset = self.datasets.pop(name, None)
            if dataset is None:
                raise ServiceError(f"no resident dataset named {name!r}")
            shas = {tree_content_sha(tree) for tree in dataset.trees}
            self._contexts = {
                key: ctx for key, ctx in self._contexts.items() if key[0] not in shas
            }
            self._dataset_memo = {
                key: trees
                for key, trees in self._dataset_memo.items()
                if trees is not dataset.trees
            }
        yield FRAME_JSON, encode_payload({"ok": True, "evicted": name})

    # ------------------------------------------------------------------ #
    # schedule
    # ------------------------------------------------------------------ #
    def _resolve_tree(self, request: Mapping[str, Any]) -> tuple[TaskTree, int]:
        if "tree" in request:
            tree = from_dict(request["tree"])
            return tree, int(request.get("tree_index", 0))
        name = request.get("dataset")
        if name is None:
            raise ServiceError('schedule needs either "tree" or "dataset" + "tree_index"')
        dataset = self.datasets.get(str(name))
        if dataset is None:
            raise ServiceError(
                f"no resident dataset named {name!r}; load it first "
                f"(resident: {sorted(self.datasets)})"
            )
        index = int(request.get("tree_index", 0))
        if not 0 <= index < len(dataset.trees):
            raise ServiceError(
                f"tree_index {index} out of range [0, {len(dataset.trees)}) of {name!r}"
            )
        return dataset.trees[index], index

    def _warm_context(self, tree: TaskTree, index: int, config: SweepConfig) -> Any:
        key = (
            tree_content_sha(tree),
            index,
            config.activation_order,
            config.execution_order,
        )
        context = self._contexts.get(key)
        if context is None:
            context = prepare_instance(tree, index, config)
            if len(self._contexts) >= self._context_cap:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[key] = context
        return context

    def schedule_record(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Run one ``schedule`` request and return its full sweep record.

        The record is exactly what :func:`repro.experiments.runner.run_single`
        produces for the instance — the same 21 fields ``memtree schedule
        --json`` prints locally, built by the same code.
        """
        scheduler = str(request.get("scheduler", "MemBooking"))
        processors = int(request.get("processors", 8))
        config = SweepConfig(
            schedulers=(scheduler,),
            # Carrier value only: run_single takes the factor positionally,
            # so absolute --memory below the minimum stays expressible.
            memory_factors=(1.0,),
            processors=(processors,),
            activation_order=str(request.get("ao", "memPO")),
            execution_order=str(request.get("eo", "memPO")),
            validate=bool(request.get("validate", True)),
            native=self.native if request.get("native") is None else bool(request["native"]),
        )
        with self._exec_lock:
            tree, index = self._resolve_tree(request)
            context = self._warm_context(tree, index, config)
            memory = request.get("memory")
            if memory is not None:
                factor = float(memory) / context.minimum_memory
            else:
                factor = float(request.get("memory_factor", 2.0))
            return run_single(context, scheduler, processors, factor, config)

    def _handle_schedule(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        record = self.schedule_record(request)
        yield FRAME_JSON, encode_payload({"ok": True, "record": record})

    # ------------------------------------------------------------------ #
    # sweep
    # ------------------------------------------------------------------ #
    def _sweep_plan(self, request: Mapping[str, Any]) -> tuple[list[TaskTree], SweepPlan]:
        name = request.get("dataset")
        if name is None:
            raise ServiceError('sweep needs a resident "dataset" name')
        dataset = self.datasets.get(str(name))
        if dataset is None:
            raise ServiceError(
                f"no resident dataset named {name!r}; load it first "
                f"(resident: {sorted(self.datasets)})"
            )
        config = SweepConfig(
            schedulers=tuple(request.get("schedulers", ("MemBooking",))),
            memory_factors=tuple(float(f) for f in request.get("memory_factors", (2.0,))),
            processors=tuple(int(p) for p in request.get("processors", (8,))),
            activation_order=str(request.get("ao", "memPO")),
            execution_order=str(request.get("eo", "memPO")),
            validate=bool(request.get("validate", True)),
            native=self.native if request.get("native") is None else bool(request["native"]),
            batch_size=int(request.get("batch_size", 0)),
        )
        plan = SweepPlan.from_config(config, len(dataset.trees))
        rows = request.get("rows")
        if rows is not None:
            plan = plan.subset([int(row) for row in rows])
        return dataset.trees, plan

    def _handle_sweep(self, request: Mapping[str, Any]) -> Iterator[tuple[bytes, bytes]]:
        trees, plan = self._sweep_plan(request)
        backend = request.get("backend")
        batch_rows = int(request.get("batch_rows", STREAM_BATCH_ROWS))
        if batch_rows < 1:
            raise ServiceError("batch_rows must be >= 1")
        start = time.perf_counter()
        total_rows = 0
        groups = 0
        with self._exec_lock:
            fresh_before = self.cache.rows_fresh
            cached_before = self.cache.rows_cached
            # Stream group by group: each tree's rows are simulated (or
            # served from the row store) and shipped before the next tree
            # starts, so a client watches a long plan land incrementally
            # and the daemon never holds the full result set per request.
            for _, positions in plan.tree_groups():
                table = execute_plan_cached(
                    trees, plan.subset(positions), cache=self.cache, backend=backend
                )
                groups += 1
                for offset in range(0, len(table), batch_rows):
                    stop = min(offset + batch_rows, len(table))
                    batch = RecordTable.from_dicts(
                        table.row(row) for row in range(offset, stop)
                    )
                    total_rows += len(batch)
                    yield FRAME_ROWS, batch.to_bytes()
            fresh = self.cache.rows_fresh - fresh_before
            cached = self.cache.rows_cached - cached_before
        yield (
            FRAME_JSON,
            encode_payload(
                {
                    "ok": True,
                    "rows": total_rows,
                    "fresh_rows": fresh,
                    "cached_rows": cached,
                    "tree_groups": groups,
                    "seconds": time.perf_counter() - start,
                    "plan": plan.describe(),
                }
            ),
        )


class SchedulerDaemon:
    """The socket loop around a :class:`SchedulerService`.

    Exactly one of ``socket_path`` (``AF_UNIX``) or ``port`` (TCP bound to
    ``host``, loopback by default; ``port=0`` picks an ephemeral port) must
    be given.  ``request_timeout`` bounds how long a connection may sit
    silent mid-frame or between frames before it is dropped — a dead or
    wedged client releases its thread instead of leaking it.
    """

    def __init__(
        self,
        service: SchedulerService,
        *,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        request_timeout: float | None = 300.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path or port is required")
        self.service = service
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self._listener: socket.socket | None = None
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._threads: set[threading.Thread] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """The client-facing address string (socket path or ``host:port``)."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        """Bind, listen and start accepting (returns once the address is live)."""
        if self._listener is not None:
            raise RuntimeError("daemon already started")
        self._stop.clear()
        if self.socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                if self.socket_path.exists():
                    # A live daemon would hold the path bound; probe before
                    # stealing it so two daemons cannot silently fight.
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    try:
                        probe.connect(str(self.socket_path))
                    except OSError:
                        self.socket_path.unlink()  # stale leftover
                    else:
                        raise RuntimeError(
                            f"another daemon is already serving {self.socket_path}"
                        )
                    finally:
                        probe.close()
                self.socket_path.parent.mkdir(parents=True, exist_ok=True)
                listener.bind(str(self.socket_path))
            except BaseException:
                listener.close()
                raise
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                listener.bind((self.host, int(self.port or 0)))
                self.port = listener.getsockname()[1]
            except BaseException:
                listener.close()
                raise
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="memtree-serve-accept", daemon=True
        )
        self._accept_thread.start()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (async-signal safe)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` or a signal."""
        if self._listener is None:
            self.start()
        try:
            # Short-timeout wait loop so SIGTERM/SIGINT handlers installed
            # by the CLI run promptly in the main thread.
            while not self._stop.wait(0.2):
                pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut down: stop accepting, drop connections, join threads, unlink."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        with self._conn_lock:
            connections = list(self._connections)
            threads = list(self._threads)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for thread in threads:
            thread.join(timeout=5.0)
        if self.socket_path is not None and self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:  # listener closed by stop()
                return
            conn.settimeout(self.request_timeout)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._conn_lock:
                self._connections.add(conn)
                self._threads.add(thread)
                self._threads = {t for t in self._threads if t.is_alive() or t is thread}
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(conn)
                except (ProtocolError, OSError):
                    # Torn stream / dead client / idle timeout: drop the
                    # connection, never the daemon.
                    return
                if frame is None:  # clean EOF
                    return
                kind, payload = frame
                if kind != FRAME_JSON:
                    return  # requests must be J frames; anything else is corruption
                try:
                    request = decode_payload(payload)
                except ProtocolError:
                    return
                if request.get("kind") == "shutdown":
                    # Handled at the daemon layer: acknowledge, then stop.
                    started = time.perf_counter()
                    try:
                        send_frame(
                            conn,
                            FRAME_JSON,
                            encode_payload({"ok": True, "shutting_down": True}),
                        )
                    except OSError:
                        pass
                    self.service.metrics.observe(
                        "shutdown", time.perf_counter() - started
                    )
                    self._stop.set()
                    return
                try:
                    for out_kind, out_payload in self.service.handle(request):
                        send_frame(conn, out_kind, out_payload)
                except OSError:
                    return  # client went away mid-response
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            conn.close()
