"""Per-request service metrics, surfaced through the ``status`` request.

One :class:`ServiceMetrics` instance lives on the
:class:`~repro.service.server.SchedulerService` and every request — served
or quarantined — records its kind and wall-clock latency here.  The
counters are cumulative since daemon start (``status`` itself is counted),
cheap to update (one small lock around plain dict arithmetic, no
per-request allocation beyond the update), and cheap to read:
:meth:`snapshot` materialises a plain JSON-safe dict.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe per-request-kind latency and error counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: kind -> [count, errors, total_seconds, max_seconds]
        self._counters: dict[str, list[float]] = {}

    def observe(self, kind: str, seconds: float, *, error: bool = False) -> None:
        """Record one request of ``kind`` that took ``seconds`` wall-clock."""
        with self._lock:
            entry = self._counters.get(kind)
            if entry is None:
                entry = self._counters[kind] = [0, 0, 0.0, 0.0]
            entry[0] += 1
            entry[1] += 1 if error else 0
            entry[2] += seconds
            entry[3] = max(entry[3], seconds)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-safe view: per kind ``count``/``errors``/latency stats."""
        with self._lock:
            counters = {kind: list(entry) for kind, entry in self._counters.items()}
        return {
            kind: {
                "count": int(count),
                "errors": int(errors),
                "total_seconds": total,
                "mean_seconds": total / count if count else 0.0,
                "max_seconds": peak,
            }
            for kind, (count, errors, total, peak) in sorted(counters.items())
        }
