"""The resident scheduler service (``memtree serve`` / ``memtree client``).

A cold ``memtree schedule`` pays interpreter start, package import, dataset
load and the per-tree O(n) derivations (orders, minimum memory,
:class:`~repro.schedulers.engine.SimWorkspace`) before the first simulated
event.  The service pays them once: a long-lived daemon keeps datasets
resident as :class:`~repro.core.tree_store.TreeStore`-backed trees, keeps
the per-tree contexts and the
:class:`~repro.experiments.records.ResultCache` /
:class:`~repro.workloads.datasets.WorkloadCache` handles warm, and answers
``schedule`` / ``sweep`` / ``status`` / ``load`` / ``evict`` queries over a
local stream socket — the "which schedule for *this* instance, now" query
pattern of an online-arrival workload.

Layout (prism-style: one core library, multiple surfaces):

* :mod:`~repro.service.protocol` — length-prefixed framing, the JSON
  request/response dialect, the raw
  :class:`~repro.experiments.records.RecordTable` row-batch wire format,
  and the one payload serializer shared by the wire and the CLI ``--json``
  outputs;
* :mod:`~repro.service.server` — :class:`SchedulerService` (resident
  state + request handlers, socket free) and :class:`SchedulerDaemon`
  (the socket loop);
* :mod:`~repro.service.client` — :class:`ServiceClient`, one persistent
  connection wrapping each request kind;
* :mod:`~repro.service.metrics` — per-request latency/error counters
  surfaced through ``status``.
"""

from .client import RemoteError, ServiceClient, parse_address
from .metrics import ServiceMetrics
from .protocol import (
    FRAME_JSON,
    FRAME_ROWS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_payload,
    payload_text,
    recv_frame,
    send_frame,
    send_json,
)
from .server import DEFAULT_DATASET_SEEDS, SchedulerDaemon, SchedulerService, ServiceError

__all__ = [
    "DEFAULT_DATASET_SEEDS",
    "FRAME_JSON",
    "FRAME_ROWS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "SchedulerDaemon",
    "SchedulerService",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "decode_payload",
    "encode_payload",
    "parse_address",
    "payload_text",
    "recv_frame",
    "send_frame",
    "send_json",
]
