"""memtree — dynamic memory-aware task-tree scheduling.

A faithful, self-contained reproduction of

    Guillaume Aupy, Clément Brasseur, Loris Marchal,
    "Dynamic memory-aware task-tree scheduling",
    INRIA research report RR-8966 (2016) / IPDPS 2017.

The package provides:

* :mod:`repro.core` — the task-tree model (output / execution data,
  processing times, ``MemNeeded``) and structural tooling;
* :mod:`repro.orders` — the traversals used as activation/execution orders
  (memory-minimising postorder, optimal sequential traversal, critical path,
  ...), plus sequential peak/average memory evaluation;
* :mod:`repro.schedulers` — the paper's heuristics (``Activation``,
  ``MemBookingRedTree`` and the contributed ``MemBooking``) on top of an
  event-driven shared-memory simulator, with schedule validation;
* :mod:`repro.bounds` — classical and memory-aware makespan lower bounds;
* :mod:`repro.workloads` — synthetic trees (Section 7.1) and an
  assembly-tree surrogate built by real symbolic sparse factorization;
* :mod:`repro.experiments` — the sweep runner and one entry point per paper
  figure;
* :mod:`repro.analysis` — the static kernel-contract analyzer
  (``memtree lint``): compilable-subset purity of the registered hot
  kernels, plane dtype contracts, and the scalar/lane anti-drift rule.

Quick start
-----------
>>> from repro import (MemBookingScheduler, minimum_memory_postorder,
...                    sequential_peak_memory, synthetic_tree)
>>> tree = synthetic_tree(num_nodes=200, rng=0)
>>> order = minimum_memory_postorder(tree)
>>> memory = 2.0 * sequential_peak_memory(tree, order)
>>> result = MemBookingScheduler().schedule(tree, num_processors=8,
...                                         memory_limit=memory)
>>> result.completed
True
"""

from . import analysis, bounds, core, experiments, orders, schedulers, workloads
from .bounds import (
    classical_lower_bound,
    combined_lower_bound,
    lower_bounds,
    memory_lower_bound,
)
from .core import TaskTree, TreeBuilder, tree_stats
from .orders import (
    Ordering,
    critical_path_order,
    make_order,
    minimum_memory_postorder,
    optimal_sequential_order,
    sequential_peak_memory,
)
from .schedulers import (
    ActivationScheduler,
    ListScheduler,
    MemBookingRedTreeScheduler,
    MemBookingScheduler,
    ScheduleResult,
    Scheduler,
    SequentialScheduler,
    make_scheduler,
    validate_schedule,
)
from .workloads import (
    assembly_dataset,
    assembly_tree_from_matrix,
    synthetic_dataset,
    synthetic_tree,
)

__version__: str = "1.0.0"

__all__: list[str] = [
    "analysis",
    "bounds",
    "core",
    "experiments",
    "orders",
    "schedulers",
    "workloads",
    "classical_lower_bound",
    "combined_lower_bound",
    "lower_bounds",
    "memory_lower_bound",
    "TaskTree",
    "TreeBuilder",
    "tree_stats",
    "Ordering",
    "critical_path_order",
    "make_order",
    "minimum_memory_postorder",
    "optimal_sequential_order",
    "sequential_peak_memory",
    "ActivationScheduler",
    "ListScheduler",
    "MemBookingRedTreeScheduler",
    "MemBookingScheduler",
    "ScheduleResult",
    "Scheduler",
    "SequentialScheduler",
    "make_scheduler",
    "validate_schedule",
    "assembly_dataset",
    "assembly_tree_from_matrix",
    "synthetic_dataset",
    "synthetic_tree",
    "__version__",
]
