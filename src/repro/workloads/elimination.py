"""Symbolic sparse factorization: elimination trees, supernodes, assembly trees.

This module is the substrate that turns a sparse symmetric matrix into the
kind of task tree the paper schedules — the *assembly tree* of a multifrontal
factorization:

1. :func:`elimination_tree` computes the elimination tree of the matrix
   (Liu's union-find algorithm with path compression);
2. :func:`column_counts` performs the symbolic factorization needed to know
   the size of every column of the Cholesky factor (row-subtree traversal);
3. :func:`fundamental_supernodes` groups consecutive columns with identical
   structure into supernodes, optionally amalgamating small children into
   their parent (relaxed amalgamation, as done by real multifrontal codes to
   reduce tree overhead);
4. :func:`assembly_tree_from_matrix` assembles the final
   :class:`~repro.core.task_tree.TaskTree`: each supernode becomes a task
   whose *output* is its contribution block (``border**2`` entries), whose
   *execution data* is the rest of its frontal matrix (``front**2 -
   border**2`` entries) and whose *processing time* is the flop count of the
   partial dense factorization of the front.  This is exactly the memory
   model of Section 2 applied to multifrontal fronts.

Fill-reducing orderings matter enormously for the tree shape; geometric
nested dissection permutations for the regular grids of
:mod:`repro.workloads.sparse_matrices` are provided
(:func:`nested_dissection_2d`, :func:`nested_dissection_3d`) so the data sets
contain both broad/balanced and deep/thin trees, like the real collection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.task_tree import NO_PARENT, TaskTree

__all__ = [
    "elimination_tree",
    "column_counts",
    "Supernode",
    "fundamental_supernodes",
    "assembly_tree_from_matrix",
    "nested_dissection_2d",
    "nested_dissection_3d",
    "front_flops",
]


def _lower_structure(matrix: sp.spmatrix) -> sp.csc_matrix:
    """Strictly lower-triangular pattern of ``matrix`` in CSC form."""
    csc = sp.csc_matrix(matrix)
    if csc.shape[0] != csc.shape[1]:
        raise ValueError("the matrix must be square")
    return sp.tril(csc, k=-1, format="csc")


def elimination_tree(matrix: sp.spmatrix) -> np.ndarray:
    """Elimination tree of a symmetric matrix (parent array, -1 for roots).

    Liu's algorithm: process the columns in order; for every entry ``(i, j)``
    of the strictly lower triangle (``i > j``), walk the virtual forest from
    ``j`` upwards (with path compression through the ``ancestor`` array) and
    attach the encountered root to ``i``.
    """
    lower = _lower_structure(matrix)
    n = lower.shape[0]
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    ancestor = np.full(n, NO_PARENT, dtype=np.int64)
    # Iterate over rows i of the strict lower triangle: entries (i, j), j < i.
    csr = sp.csr_matrix(lower)
    for i in range(n):
        for j in csr.indices[csr.indptr[i] : csr.indptr[i + 1]]:
            node = int(j)
            while ancestor[node] != NO_PARENT and ancestor[node] != i:
                next_node = int(ancestor[node])
                ancestor[node] = i
                node = next_node
            if ancestor[node] == NO_PARENT:
                ancestor[node] = i
                parent[node] = i
    return parent


def column_counts(matrix: sp.spmatrix, parent: np.ndarray | None = None) -> np.ndarray:
    """Number of nonzeros of every column of the Cholesky factor (diagonal included).

    Uses the row-subtree characterisation: the nonzero columns of row ``i`` of
    ``L`` are the nodes encountered when walking from every ``j`` with
    ``A[i, j] != 0`` (``j < i``) up the elimination tree until reaching ``i``
    or a node already visited for this row.  Complexity is proportional to
    the total size of the row subtrees, which is the number of nonzeros of
    ``L`` — fine for the moderate matrices used by the experiments.
    """
    lower = _lower_structure(matrix)
    n = lower.shape[0]
    if parent is None:
        parent = elimination_tree(matrix)
    counts = np.ones(n, dtype=np.int64)  # the diagonal entry of every column
    mark = np.full(n, -1, dtype=np.int64)
    csr = sp.csr_matrix(lower)
    for i in range(n):
        mark[i] = i
        for j in csr.indices[csr.indptr[i] : csr.indptr[i + 1]]:
            node = int(j)
            while node != -1 and mark[node] != i:
                counts[node] += 1
                mark[node] = i
                node = int(parent[node])
    return counts


@dataclass(frozen=True)
class Supernode:
    """A supernode: a set of consecutive elimination-tree columns.

    Attributes
    ----------
    columns:
        Matrix columns amalgamated into this supernode.
    front_size:
        Order of the frontal matrix (number of rows of the first column of
        the supernode in ``L``, possibly enlarged by relaxed amalgamation).
    border_size:
        Rows of the front that remain after eliminating the supernode's
        columns; ``border_size**2`` is the contribution block passed to the
        parent.
    """

    columns: tuple[int, ...]
    front_size: int
    border_size: int

    @property
    def num_columns(self) -> int:
        return len(self.columns)


def fundamental_supernodes(
    parent: np.ndarray,
    counts: np.ndarray,
    *,
    relax_columns: int = 0,
) -> tuple[list[Supernode], np.ndarray]:
    """Group columns into supernodes and build the supernodal tree.

    A column ``j`` is merged with its parent ``p`` when ``j`` is the only
    child of ``p`` and ``count[j] == count[p] + 1`` (identical structure
    below the diagonal) — the classical *fundamental* supernodes.  With
    ``relax_columns > 0``, a child supernode with at most that many columns
    is additionally absorbed into its parent (relaxed amalgamation), which
    produces coarser trees at the price of slightly larger fronts, exactly
    like production multifrontal solvers do.

    Returns ``(supernodes, snode_parent)`` where ``snode_parent`` is the
    parent array of the supernodal tree (one entry per supernode, ``-1`` for
    roots).
    """
    n = parent.size
    num_children = np.zeros(n, dtype=np.int64)
    for j in range(n):
        if parent[j] != NO_PARENT:
            num_children[parent[j]] += 1

    # --- fundamental supernodes -------------------------------------------
    # head[j] is True when column j starts a new supernode.
    head = np.ones(n, dtype=bool)
    for j in range(n):
        p = parent[j]
        if p != NO_PARENT and num_children[p] == 1 and counts[j] == counts[p] + 1:
            head[p] = False  # p continues the supernode started at (or before) j

    # ``only_child[p]``: the unique child of ``p`` when it has exactly one.
    only_child = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        p = parent[j]
        if p != NO_PARENT and num_children[p] == 1:
            only_child[p] = j

    snode_of = np.full(n, -1, dtype=np.int64)
    supernode_columns: list[list[int]] = []
    # Columns are processed in increasing order; within a supernode the
    # columns form a chain in the elimination tree and every elimination-tree
    # parent has a larger index than its children, so when a non-head column
    # is reached its unique child is already assigned.
    for j in range(n):
        if head[j]:
            supernode_columns.append([j])
            snode_of[j] = len(supernode_columns) - 1
        else:
            child = int(only_child[j])
            snode_of[j] = snode_of[child]
            supernode_columns[snode_of[j]].append(j)

    # Parent relation between supernodes.
    num_snodes = len(supernode_columns)
    snode_parent = np.full(num_snodes, NO_PARENT, dtype=np.int64)
    for s, columns in enumerate(supernode_columns):
        top = columns[-1]
        p = parent[top]
        if p != NO_PARENT:
            snode_parent[s] = snode_of[p]

    # --- relaxed amalgamation ----------------------------------------------
    if relax_columns > 0:
        absorbed_into = np.arange(num_snodes, dtype=np.int64)

        def find(s: int) -> int:
            while absorbed_into[s] != s:
                absorbed_into[s] = absorbed_into[absorbed_into[s]]
                s = absorbed_into[s]
            return s

        # Process supernodes bottom-up (children have smaller head columns
        # than their parent, so index order works).
        for s in range(num_snodes):
            p = snode_parent[s]
            if p == NO_PARENT:
                continue
            if len(supernode_columns[s]) <= relax_columns:
                target = find(int(p))
                absorbed_into[find(s)] = target
                supernode_columns[target] = supernode_columns[s] + supernode_columns[target]

        # Rebuild the supernode list and parents after absorption.
        survivors = [s for s in range(num_snodes) if find(s) == s]
        new_index = {s: k for k, s in enumerate(survivors)}
        merged_columns = [sorted(supernode_columns[s]) for s in survivors]
        merged_parent = np.full(len(survivors), NO_PARENT, dtype=np.int64)
        for k, s in enumerate(survivors):
            p = snode_parent[s]
            while p != NO_PARENT and find(int(p)) == find(s):
                p = snode_parent[int(p)]
            if p != NO_PARENT:
                merged_parent[k] = new_index[find(int(p))]
        supernode_columns = merged_columns
        snode_parent = merged_parent
        num_snodes = len(supernode_columns)

    # --- front / border sizes ----------------------------------------------
    supernodes: list[Supernode] = []
    for columns in supernode_columns:
        first = columns[0]
        nc = len(columns)
        front = int(max(counts[first], nc))
        border = front - nc
        supernodes.append(
            Supernode(columns=tuple(columns), front_size=front, border_size=max(border, 0))
        )
    return supernodes, snode_parent


def front_flops(num_columns: int, front_size: int) -> float:
    """Flop count of the partial dense factorisation of a front.

    Eliminating ``nc`` pivots from a dense ``d x d`` front costs
    ``sum_{k=0}^{nc-1} (d - k - 1) * (d - k)`` multiply-add pairs for the
    update plus the pivot column scalings — we use the standard closed form
    ``(2/3) nc^3 + nc^2 b + 2 nc b^2 + lower-order`` with ``b = d - nc``,
    computed exactly by summation to stay simple and monotone.
    """
    d = float(front_size)
    flops = 0.0
    for k in range(num_columns):
        remaining = d - k
        flops += remaining * remaining
    return flops


def assembly_tree_from_matrix(
    matrix: sp.spmatrix,
    *,
    permutation: np.ndarray | None = None,
    relax_columns: int = 0,
    data_unit: float = 8.0,
    time_unit: float = 1e-9,
) -> TaskTree:
    """Build the multifrontal assembly tree of a sparse symmetric matrix.

    Parameters
    ----------
    matrix:
        Sparse symmetric matrix (only the pattern matters).
    permutation:
        Optional fill-reducing permutation (``new_order[k]`` = original index
        of the k-th eliminated variable), e.g. from :func:`nested_dissection_2d`
        or :func:`scipy.sparse.csgraph.reverse_cuthill_mckee`.
    relax_columns:
        Relaxed-amalgamation threshold passed to :func:`fundamental_supernodes`.
    data_unit:
        Bytes per matrix entry (8 for double precision) — scales ``f`` and ``n``.
    time_unit:
        Seconds per flop — scales the processing times.

    Returns
    -------
    TaskTree
        One task per supernode.  If the elimination tree is a forest (the
        matrix is reducible), the extra roots are attached to the supernode
        of the last column so the result is a single tree; this only adds
        precedence constraints, never removes any.
    """
    csc = sp.csc_matrix(matrix)
    if permutation is not None:
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(csc.shape[0])):
            raise ValueError("permutation must be a permutation of the matrix indices")
        csc = sp.csc_matrix(csc[permutation, :][:, permutation])

    parent = elimination_tree(csc)
    counts = column_counts(csc, parent)
    supernodes, snode_parent = fundamental_supernodes(
        parent, counts, relax_columns=relax_columns
    )

    # Attach secondary roots (reducible matrices) to the supernode holding the
    # last column, keeping a single tree.
    roots = [s for s, p in enumerate(snode_parent) if p == NO_PARENT]
    if len(roots) > 1:
        last_column_snode = max(roots, key=lambda s: supernodes[s].columns[-1])
        for s in roots:
            if s != last_column_snode:
                snode_parent[s] = last_column_snode

    fout = np.empty(len(supernodes))
    nexec = np.empty(len(supernodes))
    ptime = np.empty(len(supernodes))
    for k, snode in enumerate(supernodes):
        front = snode.front_size
        border = snode.border_size
        fout[k] = data_unit * border * border
        nexec[k] = data_unit * (front * front - border * border)
        ptime[k] = time_unit * front_flops(snode.num_columns, front)
    # Zero-duration supernodes are possible for 1x1 fronts with time_unit
    # rounding; clamp to a small positive time so makespans stay meaningful.
    ptime = np.maximum(ptime, time_unit)
    return TaskTree(snode_parent, fout=fout, nexec=nexec, ptime=ptime, validate=False)


# --------------------------------------------------------------------------- #
# geometric nested dissection for the regular grids of ``sparse_matrices``
# --------------------------------------------------------------------------- #
def nested_dissection_2d(nx: int, ny: int, *, leaf_size: int = 4) -> np.ndarray:
    """Nested-dissection elimination order for an ``nx x ny`` grid.

    Vertices are indexed ``x * ny + y`` (matching
    :func:`repro.workloads.sparse_matrices.grid_laplacian_2d`).  The domain is
    recursively bisected along its longer dimension; separator vertices are
    eliminated last, which yields broad and well-balanced elimination trees.
    """
    order: list[int] = []

    def recurse(x0: int, x1: int, y0: int, y1: int) -> None:
        width, height_ = x1 - x0, y1 - y0
        if width <= 0 or height_ <= 0:
            return
        if width * height_ <= leaf_size:
            for x in range(x0, x1):
                for y in range(y0, y1):
                    order.append(x * ny + y)
            return
        if width >= height_:
            mid = (x0 + x1) // 2
            recurse(x0, mid, y0, y1)
            recurse(mid + 1, x1, y0, y1)
            for y in range(y0, y1):
                order.append(mid * ny + y)
        else:
            mid = (y0 + y1) // 2
            recurse(x0, x1, y0, mid)
            recurse(x0, x1, mid + 1, y1)
            for x in range(x0, x1):
                order.append(x * ny + mid)

    recurse(0, nx, 0, ny)
    return np.asarray(order, dtype=np.int64)


def nested_dissection_3d(nx: int, ny: int, nz: int, *, leaf_size: int = 8) -> np.ndarray:
    """Nested-dissection elimination order for an ``nx x ny x nz`` grid."""
    order: list[int] = []

    def index(x: int, y: int, z: int) -> int:
        return (x * ny + y) * nz + z

    def recurse(x0: int, x1: int, y0: int, y1: int, z0: int, z1: int) -> None:
        dims = (x1 - x0, y1 - y0, z1 - z0)
        if min(dims) <= 0:
            return
        if dims[0] * dims[1] * dims[2] <= leaf_size:
            for x in range(x0, x1):
                for y in range(y0, y1):
                    for z in range(z0, z1):
                        order.append(index(x, y, z))
            return
        axis = int(np.argmax(dims))
        if axis == 0:
            mid = (x0 + x1) // 2
            recurse(x0, mid, y0, y1, z0, z1)
            recurse(mid + 1, x1, y0, y1, z0, z1)
            for y in range(y0, y1):
                for z in range(z0, z1):
                    order.append(index(mid, y, z))
        elif axis == 1:
            mid = (y0 + y1) // 2
            recurse(x0, x1, y0, mid, z0, z1)
            recurse(x0, x1, mid + 1, y1, z0, z1)
            for x in range(x0, x1):
                for z in range(z0, z1):
                    order.append(index(x, mid, z))
        else:
            mid = (z0 + z1) // 2
            recurse(x0, x1, y0, y1, z0, mid)
            recurse(x0, x1, y0, y1, mid + 1, z1)
            for x in range(x0, x1):
                for y in range(y0, y1):
                    order.append(index(x, y, mid))

    recurse(0, nx, 0, ny, 0, nz)
    return np.asarray(order, dtype=np.int64)
