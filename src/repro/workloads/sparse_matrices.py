"""Synthetic sparse symmetric matrices for the assembly-tree surrogate.

The paper's first data set consists of assembly (elimination) trees of 608
sparse matrices from the University of Florida collection.  That collection
cannot be downloaded in this offline reproduction, so we generate sparse
symmetric positive-definite-like matrices whose elimination trees exhibit the
same variety of shapes:

* :func:`grid_laplacian_2d` / :func:`grid_laplacian_3d` — finite-difference
  Laplacians on regular meshes, the canonical PDE matrices; combined with a
  nested-dissection permutation they give broad, balanced elimination trees,
  and with the natural (band) ordering they give deep, thin ones;
* :func:`random_symmetric_pattern` — random sparsity, producing very
  irregular trees;
* :func:`banded_matrix` — narrow band matrices whose elimination trees are
  (close to) chains, the deep/thin extreme observed in the real collection.

Grid matrices use the explicit vertex numbering ``index = x * ny + y``
(2-D) and ``index = (x * ny + y) * nz + z`` (3-D) so that the geometric
nested-dissection permutations of :mod:`repro.workloads.elimination` can be
applied consistently.

Only the sparsity *pattern* matters for the symbolic analysis; numerical
values are set to make the matrices diagonally dominant so they are also
usable in numerical examples.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .._utils import as_rng

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_symmetric_pattern",
    "banded_matrix",
]


def grid_laplacian_2d(nx: int, ny: int | None = None) -> sp.csc_matrix:
    """5-point Laplacian on an ``nx x ny`` grid, vertex ``(x, y)`` -> ``x*ny + y``."""
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []

    def index(x: int, y: int) -> int:
        return x * ny + y

    for x in range(nx):
        for y in range(ny):
            i = index(x, y)
            rows.append(i)
            cols.append(i)
            data.append(4.0)
            for dx, dy in ((1, 0), (0, 1)):
                xx, yy = x + dx, y + dy
                if xx < nx and yy < ny:
                    j = index(xx, yy)
                    rows.extend((i, j))
                    cols.extend((j, i))
                    data.extend((-1.0, -1.0))
    n = nx * ny
    return sp.csc_matrix(sp.coo_matrix((data, (rows, cols)), shape=(n, n)))


def grid_laplacian_3d(nx: int, ny: int | None = None, nz: int | None = None) -> sp.csc_matrix:
    """7-point Laplacian on ``nx x ny x nz``, vertex ``(x,y,z)`` -> ``(x*ny + y)*nz + z``."""
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []

    def index(x: int, y: int, z: int) -> int:
        return (x * ny + y) * nz + z

    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                i = index(x, y, z)
                rows.append(i)
                cols.append(i)
                data.append(6.0)
                for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                    xx, yy, zz = x + dx, y + dy, z + dz
                    if xx < nx and yy < ny and zz < nz:
                        j = index(xx, yy, zz)
                        rows.extend((i, j))
                        cols.extend((j, i))
                        data.extend((-1.0, -1.0))
    n = nx * ny * nz
    return sp.csc_matrix(sp.coo_matrix((data, (rows, cols)), shape=(n, n)))


def random_symmetric_pattern(
    n: int,
    avg_nnz_per_row: float = 4.0,
    rng: np.random.Generator | int | None = None,
    *,
    connected: bool = True,
) -> sp.csc_matrix:
    """Random symmetric sparsity pattern with a dominant diagonal.

    Roughly ``avg_nnz_per_row`` off-diagonal entries per row are placed
    uniformly at random (symmetrised).  With ``connected=True`` (default) a
    Hamiltonian path ``i — i+1`` is added so the elimination tree is a single
    tree rather than a forest.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if avg_nnz_per_row < 0:
        raise ValueError("avg_nnz_per_row must be non-negative")
    generator = as_rng(rng)
    num_entries = int(round(n * avg_nnz_per_row / 2.0))
    rows = generator.integers(0, n, size=num_entries)
    cols = generator.integers(0, n, size=num_entries)
    mask = rows != cols
    rows, cols = list(rows[mask]), list(cols[mask])
    if connected and n > 1:
        rows.extend(range(n - 1))
        cols.extend(range(1, n))
    data = np.full(len(rows), -1.0)
    off = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    sym = off + off.T
    diag = np.asarray(np.abs(sym).sum(axis=1)).ravel() + 1.0
    return sp.csc_matrix(sym + sp.diags(diag))


def banded_matrix(n: int, bandwidth: int = 2) -> sp.csc_matrix:
    """Symmetric banded matrix; its elimination tree is (close to) a chain."""
    if n < 1:
        raise ValueError("n must be positive")
    if bandwidth < 1:
        raise ValueError("bandwidth must be at least 1")
    offsets = list(range(-bandwidth, bandwidth + 1))
    diagonals = []
    for offset in offsets:
        size = n - abs(offset)
        if size <= 0:
            continue
        diagonals.append(np.full(size, 2.0 * bandwidth + 1.0 if offset == 0 else -1.0))
    usable_offsets = [o for o in offsets if n - abs(o) > 0]
    return sp.csc_matrix(sp.diags(diagonals, usable_offsets, shape=(n, n)))
