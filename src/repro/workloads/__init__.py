"""Workload generation: structured families, synthetic trees, assembly trees."""

from . import families
from .datasets import (
    GENERATOR_VERSION,
    DatasetSpec,
    WorkloadCache,
    assembly_dataset,
    heavyleaf_dataset,
    height_study_dataset,
    synthetic_dataset,
)
from .elimination import (
    Supernode,
    assembly_tree_from_matrix,
    column_counts,
    elimination_tree,
    front_flops,
    fundamental_supernodes,
    nested_dissection_2d,
    nested_dissection_3d,
)
from .families import (
    balanced_tree,
    binary_reduction_tree,
    caterpillar,
    heavy_leaf_caterpillar,
    chain,
    comb,
    random_attachment_tree,
    spine_with_subtrees,
    star,
)
from .sparse_matrices import (
    banded_matrix,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_symmetric_pattern,
)
from .synthetic import SyntheticTreeConfig, synthetic_tree, synthetic_trees

__all__ = [
    "families",
    "DatasetSpec",
    "GENERATOR_VERSION",
    "WorkloadCache",
    "assembly_dataset",
    "heavyleaf_dataset",
    "height_study_dataset",
    "synthetic_dataset",
    "Supernode",
    "assembly_tree_from_matrix",
    "column_counts",
    "elimination_tree",
    "front_flops",
    "fundamental_supernodes",
    "nested_dissection_2d",
    "nested_dissection_3d",
    "balanced_tree",
    "binary_reduction_tree",
    "caterpillar",
    "heavy_leaf_caterpillar",
    "chain",
    "comb",
    "random_attachment_tree",
    "spine_with_subtrees",
    "star",
    "banded_matrix",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "random_symmetric_pattern",
    "SyntheticTreeConfig",
    "synthetic_tree",
    "synthetic_trees",
]
