"""Synthetic tree generator reproducing the data set of Section 7.1.

The paper's second data set is made of random trees with

* node degrees drawn from ``Pr(1)=0.58, Pr(2)=0.17, Pr(3)=Pr(4)=Pr(5)=0.08``
  (small degrees favoured to avoid very large, very shallow trees),
* edge weights (output sizes ``f_i``) drawn from a truncated exponential:
  ``clip(100 * Exp(1), 10, 10000)``,
* execution data ``n_i`` equal to 10% of the node's output size,
* processing times proportional to the node's output size.

The construction grows the tree from the root: a frontier of open nodes is
expanded, each expansion drawing a number of children from the degree
distribution, until the target number of nodes is reached (remaining frontier
nodes become leaves).  The ``expansion`` parameter controls which frontier
node is expanded next and therefore the depth profile of the tree:

``"random"`` (default)
    expand a uniformly random frontier node — irregular trees of moderate
    depth, the closest match to the height statistics reported in the paper;
``"breadth"``
    expand the oldest frontier node — the shallowest trees;
``"depth"``
    expand the newest frontier node — the deepest trees.

The exact construction used by the authors is not fully specified, so the
heights do not match the paper's averages exactly; what matters for the
experiments (and what is preserved) is the mix of chains and bushy sections
and the heavy-tailed data sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .._utils import as_rng
from ..core.task_tree import NO_PARENT, TaskTree

__all__ = ["SyntheticTreeConfig", "synthetic_tree", "synthetic_trees"]

#: Degree distribution of Section 7.1 (probability of 1, 2, 3, 4, 5 children).
_DEGREES = np.asarray([1, 2, 3, 4, 5])
_DEGREE_PROBS = np.asarray([0.58, 0.17, 0.08, 0.08, 0.08])
# The probabilities of the paper sum to 0.99; renormalise.
_DEGREE_PROBS = _DEGREE_PROBS / _DEGREE_PROBS.sum()


@dataclass(frozen=True)
class SyntheticTreeConfig:
    """Parameters of the Section 7.1 synthetic generator."""

    #: number of nodes of each generated tree
    num_nodes: int = 1000
    #: scale applied to the Exp(1) draw for the edge weights
    weight_scale: float = 100.0
    #: truncation interval of the edge weights
    weight_range: tuple[float, float] = (10.0, 10_000.0)
    #: execution data as a fraction of the output size
    exec_fraction: float = 0.10
    #: processing time as a multiple of the output size
    time_factor: float = 1.0
    #: frontier expansion policy (see module docstring)
    expansion: Literal["random", "breadth", "depth"] = "random"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.weight_range[0] > self.weight_range[1]:
            raise ValueError("weight_range must be (low, high) with low <= high")
        if self.exec_fraction < 0:
            raise ValueError("exec_fraction must be non-negative")
        if self.expansion not in ("random", "breadth", "depth"):
            raise ValueError("expansion must be 'random', 'breadth' or 'depth'")


def _draw_weights(rng: np.random.Generator, size: int, config: SyntheticTreeConfig) -> np.ndarray:
    low, high = config.weight_range
    raw = rng.exponential(scale=1.0, size=size) * config.weight_scale
    return np.clip(raw, low, high)


def synthetic_tree(
    config: SyntheticTreeConfig | None = None,
    rng: np.random.Generator | int | None = None,
    **overrides,
) -> TaskTree:
    """Generate one synthetic tree following the Section 7.1 distributions.

    Keyword overrides are applied on top of ``config`` (e.g.
    ``synthetic_tree(num_nodes=500, seed...)``).
    """
    if config is None:
        config = SyntheticTreeConfig(**overrides)
    elif overrides:
        config = SyntheticTreeConfig(**{**config.__dict__, **overrides})
    generator = as_rng(rng)
    n = config.num_nodes

    parent = np.full(n, NO_PARENT, dtype=np.int64)
    created = 1  # the root (node 0) exists
    frontier: list[int] = [0]
    while created < n and frontier:
        if config.expansion == "breadth":
            index = 0
        elif config.expansion == "depth":
            index = len(frontier) - 1
        else:
            index = int(generator.integers(0, len(frontier)))
        node = frontier.pop(index)
        degree = int(generator.choice(_DEGREES, p=_DEGREE_PROBS))
        degree = min(degree, n - created)
        for _ in range(degree):
            parent[created] = node
            frontier.append(created)
            created += 1
    # Any frontier node left simply stays a leaf.

    fout = _draw_weights(generator, n, config)
    nexec = config.exec_fraction * fout
    ptime = config.time_factor * fout
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime, validate=False)


def synthetic_trees(
    num_trees: int,
    config: SyntheticTreeConfig | None = None,
    rng: np.random.Generator | int | None = None,
    **overrides,
) -> list[TaskTree]:
    """Generate a list of independent synthetic trees (one RNG stream shared)."""
    generator = as_rng(rng)
    return [synthetic_tree(config, generator, **overrides) for _ in range(num_trees)]
