"""Structured tree families used in examples, tests and ablation benchmarks.

These deterministic or lightly-randomised shapes stress specific aspects of
the schedulers:

* chains — no parallelism at all, the worst case for the ``n H`` term of the
  MemBooking complexity (Figure 6 discussion);
* stars / combs — massive bottom-level parallelism bounded only by memory;
* balanced trees — the classic divide-and-conquer profile;
* caterpillars and spines — deep trees with a trickle of side parallelism,
  the regime where the paper observes the smallest speedups (Figure 7);
* random attachment trees — shallow, bushy, irregular.

Every builder accepts callables or scalars for the per-node data so the same
shapes can be reused with different memory/time profiles.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._utils import as_rng
from ..core.task_tree import NO_PARENT, TaskTree

__all__ = [
    "chain",
    "star",
    "balanced_tree",
    "caterpillar",
    "heavy_leaf_caterpillar",
    "spine_with_subtrees",
    "comb",
    "random_attachment_tree",
    "binary_reduction_tree",
]

_DataSpec = float | Sequence[float] | Callable[[int], float]


def _resolve(spec: _DataSpec, n: int) -> np.ndarray:
    """Turn a scalar / sequence / callable data specification into an array."""
    if callable(spec):
        return np.asarray([float(spec(i)) for i in range(n)], dtype=np.float64)
    if np.isscalar(spec):
        return np.full(n, float(spec), dtype=np.float64)  # type: ignore[arg-type]
    values = np.asarray(spec, dtype=np.float64)
    if values.shape != (n,):
        raise ValueError(f"expected {n} per-node values, got shape {values.shape}")
    return values


def chain(
    n: int,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """A chain of ``n`` tasks; node ``n-1`` is the root, node 0 the only leaf."""
    if n < 1:
        raise ValueError("a chain needs at least one node")
    parent = np.arange(1, n + 1, dtype=np.int64)
    parent[-1] = NO_PARENT
    return TaskTree(parent, fout=_resolve(fout, n), nexec=_resolve(nexec, n), ptime=_resolve(ptime, n))


def star(
    num_leaves: int,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """A root (node 0) with ``num_leaves`` children (nodes 1..num_leaves)."""
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    n = num_leaves + 1
    parent = np.zeros(n, dtype=np.int64)
    parent[0] = NO_PARENT
    return TaskTree(parent, fout=_resolve(fout, n), nexec=_resolve(nexec, n), ptime=_resolve(ptime, n))


def balanced_tree(
    arity: int,
    depth: int,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """Complete ``arity``-ary in-tree of the given depth (depth 0 = single node).

    Node 0 is the root; children are laid out level by level.
    """
    if arity < 1:
        raise ValueError("arity must be at least 1")
    if depth < 0:
        raise ValueError("depth must be non-negative")
    parents: list[int] = [NO_PARENT]
    previous_level = [0]
    for _ in range(depth):
        level: list[int] = []
        for node in previous_level:
            for _ in range(arity):
                parents.append(node)
                level.append(len(parents) - 1)
        previous_level = level
    n = len(parents)
    return TaskTree(
        np.asarray(parents, dtype=np.int64),
        fout=_resolve(fout, n),
        nexec=_resolve(nexec, n),
        ptime=_resolve(ptime, n),
    )


def caterpillar(
    spine_length: int,
    legs_per_node: int = 1,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """A spine of ``spine_length`` nodes, each with ``legs_per_node`` leaf children.

    The spine nodes are 0 (deepest) to ``spine_length - 1`` (root); leaves are
    appended afterwards.
    """
    if spine_length < 1:
        raise ValueError("spine_length must be at least 1")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    parents = list(range(1, spine_length)) + [NO_PARENT]
    # ``parents`` currently: node i (< spine_length-1) -> i+1, last -> root.
    parents = [i + 1 for i in range(spine_length - 1)] + [NO_PARENT]
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            parents.append(spine_node)
    n = len(parents)
    return TaskTree(
        np.asarray(parents, dtype=np.int64),
        fout=_resolve(fout, n),
        nexec=_resolve(nexec, n),
        ptime=_resolve(ptime, n),
    )


def heavy_leaf_caterpillar(
    spine_length: int,
    legs_per_node: int = 2,
    *,
    leaf_output: float = 50.0,
    spine_output: float = 1.0,
    nexec: _DataSpec = 0.0,
    leaf_ptime: float = 1.0,
    spine_ptime: float = 2.0,
    rng: np.random.Generator | int | None = None,
    leaf_jitter: float = 0.0,
) -> TaskTree:
    """A caterpillar whose leaves carry (almost all of) the data volume.

    Each spine node consumes ``legs_per_node`` heavy leaf inputs
    (``leaf_output`` each) and emits a light ``spine_output`` up the chain.
    This is a worst case for conservative memory booking: the Activation
    policy books the execution data of the *whole* chain although the spine
    can only ever run one node at a time, which starves the heavy leaves of
    memory and serialises the little parallelism there is; MemBooking
    recycles each spine step's leaf volume and keeps the legs parallel.  It
    is also the saturation regime of the batched lane engine — available
    parallelism is ``legs_per_node + 1`` no matter how many processors the
    grid asks for — which is what makes the family the scenario axis of the
    batch benchmarks.

    ``leaf_jitter > 0`` draws each leaf output uniformly from
    ``leaf_output * [1 - jitter, 1 + jitter]`` (seeded via ``rng``) so a
    dataset of these trees is not a single repeated instance.
    """
    if spine_length < 1:
        raise ValueError("spine_length must be at least 1")
    if legs_per_node < 1:
        raise ValueError("legs_per_node must be at least 1 (leaves are the point)")
    if leaf_output <= 0 or spine_output <= 0:
        raise ValueError("outputs must be positive")
    if not 0.0 <= leaf_jitter < 1.0:
        raise ValueError("leaf_jitter must be in [0, 1)")
    parents = [i + 1 for i in range(spine_length - 1)] + [NO_PARENT]
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            parents.append(spine_node)
    n = len(parents)
    num_leaves = spine_length * legs_per_node
    fout = np.empty(n, dtype=np.float64)
    fout[:spine_length] = spine_output
    if leaf_jitter > 0.0:
        generator = as_rng(rng)
        fout[spine_length:] = leaf_output * generator.uniform(
            1.0 - leaf_jitter, 1.0 + leaf_jitter, size=num_leaves
        )
    else:
        fout[spine_length:] = leaf_output
    ptime = np.empty(n, dtype=np.float64)
    ptime[:spine_length] = spine_ptime
    ptime[spine_length:] = leaf_ptime
    return TaskTree(
        np.asarray(parents, dtype=np.int64),
        fout=fout,
        nexec=_resolve(nexec, n),
        ptime=ptime,
    )


def spine_with_subtrees(
    spine_length: int,
    subtree_arity: int = 2,
    subtree_depth: int = 2,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """A deep spine where every spine node also roots a small balanced subtree.

    This is the "deep but not thin" profile used by the height-ablation
    benchmark: the ``n H`` dispatch term is exercised while some parallelism
    remains available.
    """
    if spine_length < 1:
        raise ValueError("spine_length must be at least 1")
    parents: list[int] = [i + 1 for i in range(spine_length - 1)] + [NO_PARENT]

    def add_balanced(root_parent: int) -> None:
        level = [root_parent]
        for _ in range(subtree_depth):
            next_level: list[int] = []
            for node in level:
                for _ in range(subtree_arity):
                    parents.append(node)
                    next_level.append(len(parents) - 1)
            level = next_level

    for spine_node in range(spine_length):
        add_balanced(spine_node)
    n = len(parents)
    return TaskTree(
        np.asarray(parents, dtype=np.int64),
        fout=_resolve(fout, n),
        nexec=_resolve(nexec, n),
        ptime=_resolve(ptime, n),
    )


def comb(
    teeth: int,
    tooth_length: int,
    *,
    fout: _DataSpec = 1.0,
    nexec: _DataSpec = 0.0,
    ptime: _DataSpec = 1.0,
) -> TaskTree:
    """A root with ``teeth`` chains of length ``tooth_length`` hanging from it."""
    if teeth < 1 or tooth_length < 1:
        raise ValueError("teeth and tooth_length must be at least 1")
    parents: list[int] = [NO_PARENT]
    for _ in range(teeth):
        previous = 0
        for _ in range(tooth_length):
            parents.append(previous)
            previous = len(parents) - 1
    n = len(parents)
    return TaskTree(
        np.asarray(parents, dtype=np.int64),
        fout=_resolve(fout, n),
        nexec=_resolve(nexec, n),
        ptime=_resolve(ptime, n),
    )


def random_attachment_tree(
    n: int,
    rng: np.random.Generator | int | None = None,
    *,
    fout_range: tuple[float, float] = (1.0, 10.0),
    nexec_range: tuple[float, float] = (0.0, 5.0),
    ptime_range: tuple[float, float] = (1.0, 5.0),
) -> TaskTree:
    """Uniform random attachment tree (node ``i`` picks a parent among ``0..i-1``)."""
    if n < 1:
        raise ValueError("n must be at least 1")
    generator = as_rng(rng)
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for i in range(1, n):
        parent[i] = generator.integers(0, i)
    return TaskTree(
        parent,
        fout=generator.uniform(*fout_range, size=n),
        nexec=generator.uniform(*nexec_range, size=n),
        ptime=generator.uniform(*ptime_range, size=n),
    )


def binary_reduction_tree(
    depth: int,
    *,
    leaf_output: float = 8.0,
    reduction_factor: float = 0.5,
    ptime: float = 1.0,
) -> TaskTree:
    """A complete binary tree whose outputs shrink towards the root.

    Every internal node outputs ``reduction_factor`` times the sum of its
    children outputs and carries no execution data, so the result is a true
    reduction tree (Section 3.2) — useful to test the RedTree baseline in its
    favourable regime.
    """
    if not 0 < reduction_factor <= 1.0:
        raise ValueError("reduction_factor must be in (0, 1]")
    tree = balanced_tree(2, depth, fout=1.0, nexec=0.0, ptime=ptime)
    fout = np.zeros(tree.n)
    for node in tree.topological_order():
        kids = tree.children(node)
        if not kids:
            fout[node] = leaf_output
        else:
            fout[node] = reduction_factor * sum(fout[c] for c in kids)
    return tree.with_data(fout=fout, nexec=np.zeros(tree.n))
