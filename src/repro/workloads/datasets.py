"""Named data sets used by the experiment harness.

The paper evaluates its heuristics on two tree families (Section 7.1):

* **assembly trees** of 608 sparse matrices from the University of Florida
  collection (2k – 1M nodes), and
* **synthetic trees** with the degree/weight distributions of Section 7.1
  (50 trees of 1k, 10k and 100k nodes).

This module builds laptop-scale surrogates of both:

* :func:`assembly_dataset` generates assembly trees from synthetic sparse
  matrices (grids with nested-dissection and band orderings, random
  patterns, banded matrices) covering the same qualitative variety — broad
  and balanced, deep and thin, and irregular trees with heavy-tailed front
  sizes;
* :func:`synthetic_dataset` simply wraps the Section 7.1 generator.

Every dataset function accepts a ``scale`` knob so the benchmarks can be run
quickly in CI (``scale="small"``) or closer to the paper's sizes
(``scale="large"``).  Trees are deterministic for a given seed.

Workload cache
--------------
Generating a dataset (assembly-tree elimination in particular) costs far
more than reading it back: a :class:`WorkloadCache` persists each generated
dataset **once** as a packed :class:`~repro.core.tree_store.TreeStore` arena
keyed by (dataset kind, scale, seed, generator version) and mmap-loads the
zero-copy tree views on every later request.  The experiment harness keeps
one under ``<out>/.workload-cache`` (``--no-workload-cache`` disables it);
bump :data:`GENERATOR_VERSION` whenever any generator's output changes, so
stale arenas can never masquerade as fresh data.

On top of the plain tree arenas, ``fetch(..., planes_orders=(ao, eo))``
persists the **workspace plane columns** of every tree (children CSR,
AO/EO orders, activation request/release blocks, tree-pure scalars — see
:mod:`repro.batch.planes`) in a second, (AO, EO)-keyed version-2 arena.
A warm fetch mmap-loads trees *and* planes and seeds the per-tree memo of
:mod:`repro.experiments.runner`, so every later
:func:`~repro.experiments.runner.prepare_instance` under that exact order
pair adopts the stored planes instead of re-deriving orders and
workspaces from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Literal

import numpy as np

from .._utils import as_rng
from ..core.task_tree import TaskTree
from ..core.tree_store import TreeStore
from . import families
from .elimination import (
    assembly_tree_from_matrix,
    nested_dissection_2d,
    nested_dissection_3d,
)
from .sparse_matrices import (
    banded_matrix,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_symmetric_pattern,
)
from .synthetic import SyntheticTreeConfig, synthetic_trees

__all__ = [
    "DatasetSpec",
    "GENERATOR_VERSION",
    "WorkloadCache",
    "assembly_dataset",
    "synthetic_dataset",
    "heavyleaf_dataset",
    "height_study_dataset",
]

Scale = Literal["tiny", "small", "medium", "large"]

#: Version of the tree generators; part of every workload-cache key.  Bump
#: it whenever any generator's output changes for the same (scale, seed), so
#: previously cached arenas are invalidated instead of silently reused.
#: v2: the heavy-leaf caterpillar family joined the generated datasets — a
#: new kind rather than a change to an existing one, so the bump is a
#: conservative one-time invalidation marking the revision of the keyed
#: generator set (pre-bump caches regenerate once on the next run).
GENERATOR_VERSION = 2

#: Version of the plane-column layout persisted by ``fetch(planes_orders=...)``;
#: part of every plane-arena key, so a change to the stored plane set (or to
#: any plane's semantics) invalidates old plane arenas without touching the
#: plain tree arenas.
_PLANES_VERSION = 1

#: Grid/matrix sizes per scale for the assembly surrogate.  Each entry is a
#: list of (kind, parameters) pairs; every pair yields one tree.
_ASSEMBLY_RECIPES: dict[str, list[tuple[str, dict]]] = {
    "tiny": [
        ("grid2d_nd", {"nx": 12, "relax": 2}),
        ("grid2d_band", {"nx": 10, "relax": 2}),
        ("random", {"n": 150, "nnz": 4.0, "relax": 2}),
        ("banded", {"n": 120, "bandwidth": 2, "relax": 2}),
    ],
    "small": [
        ("grid2d_nd", {"nx": 40, "relax": 2}),
        ("grid2d_nd", {"nx": 56, "relax": 2}),
        ("grid2d_band", {"nx": 32, "relax": 2}),
        ("grid3d_nd", {"nx": 10, "relax": 2}),
        ("random", {"n": 1200, "nnz": 4.0, "relax": 2}),
        ("random", {"n": 1200, "nnz": 2.5, "relax": 2}),
        ("random", {"n": 800, "nnz": 6.0, "relax": 2}),
        ("banded", {"n": 1000, "bandwidth": 3, "relax": 2}),
        ("banded", {"n": 1500, "bandwidth": 6, "relax": 2}),
    ],
    "medium": [
        ("grid2d_nd", {"nx": 64, "relax": 2}),
        ("grid2d_nd", {"nx": 90, "relax": 2}),
        ("grid2d_band", {"nx": 48, "relax": 2}),
        ("grid3d_nd", {"nx": 13, "relax": 2}),
        ("random", {"n": 2500, "nnz": 4.0, "relax": 2}),
        ("random", {"n": 2500, "nnz": 2.5, "relax": 2}),
        ("random", {"n": 1500, "nnz": 6.0, "relax": 2}),
        ("banded", {"n": 2500, "bandwidth": 3, "relax": 2}),
        ("banded", {"n": 4000, "bandwidth": 6, "relax": 2}),
    ],
    "large": [
        ("grid2d_nd", {"nx": 120, "relax": 2}),
        ("grid2d_nd", {"nx": 160, "relax": 2}),
        ("grid2d_band", {"nx": 80, "relax": 2}),
        ("grid3d_nd", {"nx": 18, "relax": 2}),
        ("random", {"n": 6000, "nnz": 4.0, "relax": 2}),
        ("random", {"n": 6000, "nnz": 2.5, "relax": 2}),
        ("random", {"n": 4000, "nnz": 6.0, "relax": 2}),
        ("banded", {"n": 6000, "bandwidth": 3, "relax": 2}),
        ("banded", {"n": 9000, "bandwidth": 8, "relax": 2}),
    ],
}


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a generated dataset (kept alongside the trees)."""

    name: str
    scale: str
    seed: int
    num_trees: int


class WorkloadCache:
    """Persistent :class:`~repro.core.tree_store.TreeStore` arena cache.

    One ``<key40>.trees`` arena file per generated dataset, keyed by a
    digest of ``(GENERATOR_VERSION, dataset key)`` where the dataset key is
    whatever regenerates the trees deterministically — the harness uses
    ``(kind, scale, seed)``.  A hit mmap-loads the arena and materialises
    zero-copy :class:`~repro.core.task_tree.TaskTree` views (opening a huge
    dataset is O(1) in I/O; node data pages in on use), so warm figures skip
    tree generation entirely.  Corrupt or truncated files count as misses
    and are regenerated, never raised.

    ``hits`` / ``misses`` counters feed the suite report; CI asserts that a
    warm suite run regenerates nothing (0 misses).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, dataset_key: Iterable[object]) -> str:
        """Stable digest of one dataset's identity (incl. generator version)."""
        payload = {
            "generator_version": GENERATOR_VERSION,
            "dataset": list(dataset_key),
        }
        blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:40]

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.trees"

    def _load_store(self, key: str) -> tuple[TreeStore, list[TaskTree]] | None:
        """Open the arena under ``key`` without touching the hit/miss counters.

        Corrupt or truncated files return ``None`` (regenerate and
        overwrite), exactly like a missing file.
        """
        path = self.path(key)
        if not path.exists():
            return None
        try:
            store = TreeStore.load(path)
            return store, store.trees()
        except (ValueError, OSError):
            # Torn/corrupt arena: move it aside (``*.quarantined``) so the
            # next load is a clean miss, and let regeneration overwrite.
            from ..experiments.records import quarantine_corrupt_file

            quarantine_corrupt_file(path)
            return None

    def get(self, key: str) -> list[TaskTree] | None:
        """Load the cached trees for ``key``, or ``None`` on a miss."""
        loaded = self._load_store(key)
        if loaded is None:
            self.misses += 1
            return None
        self.hits += 1
        return loaded[1]

    def put(self, key: str, trees: Iterable[TaskTree]) -> Path:
        """Pack ``trees`` into an arena under ``key`` (atomic, fsynced)."""
        from ..resilience.atomic import atomic_write_bytes

        store = TreeStore.pack(trees)
        return atomic_write_bytes(self.path(key), store.tobytes())

    def fetch(
        self,
        dataset_key: Iterable[object],
        generate: Callable[[], list[TaskTree]],
        *,
        planes_orders: tuple[str, str] | None = None,
    ) -> list[TaskTree]:
        """Return the cached trees for ``dataset_key``, generating on a miss.

        ``planes_orders`` — an ``(activation order, execution order)`` name
        pair — additionally persists the workspace plane columns of every
        tree (:mod:`repro.batch.planes`) in a second arena keyed by the
        dataset key *and* the order pair.  On a hit the planes are seeded
        into the per-tree memo of :mod:`repro.experiments.runner`, so every
        later ``prepare_instance`` under that (AO, EO) adopts the stored
        derivations (orders, workspace, lower-bound scalars) zero-copy.
        """
        if planes_orders is None:
            key = self.key(dataset_key)
            trees = self.get(key)
            if trees is None:
                trees = generate()
                self.put(key, trees)
            return trees
        from ..batch.planes import context_planes_present

        ao, eo = planes_orders
        plane_key = self.key([*list(dataset_key), "planes", _PLANES_VERSION, ao, eo])
        loaded = self._load_store(plane_key)
        if loaded is not None:
            store, trees = loaded
            per_tree = [store.planes_for(i) for i in range(len(store))]
            if per_tree and all(context_planes_present(p) for p in per_tree):
                self.hits += 1
                _seed_plane_memo(trees, per_tree, ao, eo)
                return trees
        # One miss covers the whole cold fetch: reuse the plain tree arena
        # when it exists (the plane arena is an addition, not a replacement,
        # so pre-existing caches and their keys stay valid), else generate.
        self.misses += 1
        plain = self._load_store(self.key(dataset_key))
        if plain is not None:
            trees = plain[1]
        else:
            trees = generate()
            self.put(self.key(dataset_key), trees)
        self._put_with_planes(plane_key, trees, ao, eo)
        return trees

    def _put_with_planes(
        self, key: str, trees: list[TaskTree], ao: str, eo: str
    ) -> Path:
        """Derive the plane columns of ``trees`` and persist them under ``key``."""
        from ..batch.planes import workspace_planes
        from ..experiments.config import SweepConfig

        from ..resilience.atomic import atomic_write_bytes

        config = SweepConfig(activation_order=ao, execution_order=eo)
        planes = workspace_planes(trees, config)
        store = TreeStore.pack(trees, planes=planes)
        path = atomic_write_bytes(self.path(key), store.tobytes())
        per_tree = [
            {name: arrays[i] for name, arrays in planes.items()}
            for i in range(len(trees))
        ]
        _seed_plane_memo(trees, per_tree, ao, eo)
        return path

    def stats(self) -> str:
        """One-line human-readable hit/miss summary."""
        return f"{self.hits} hits / {self.misses} misses ({self.directory})"


def _seed_plane_memo(
    trees: list[TaskTree], per_tree: list[dict[str, np.ndarray]], ao: str, eo: str
) -> None:
    """Attach each tree's plane dict to the runner's per-tree memo.

    Keyed by the exact order-name pair, so a sweep under any other (AO, EO)
    never adopts planes derived for a different ordering.
    """
    from ..experiments.runner import _tree_memo

    memo_key = f"planes:{ao}:{eo}"
    for tree, planes in zip(trees, per_tree):
        _tree_memo(tree)[memo_key] = planes


def _assembly_tree(kind: str, params: dict, rng: np.random.Generator) -> TaskTree:
    relax = int(params.get("relax", 0))
    if kind == "grid2d_nd":
        nx = int(params["nx"])
        matrix = grid_laplacian_2d(nx, nx)
        perm = nested_dissection_2d(nx, nx)
        return assembly_tree_from_matrix(matrix, permutation=perm, relax_columns=relax)
    if kind == "grid2d_band":
        nx = int(params["nx"])
        matrix = grid_laplacian_2d(nx, nx)
        return assembly_tree_from_matrix(matrix, relax_columns=relax)
    if kind == "grid3d_nd":
        nx = int(params["nx"])
        matrix = grid_laplacian_3d(nx, nx, nx)
        perm = nested_dissection_3d(nx, nx, nx)
        return assembly_tree_from_matrix(matrix, permutation=perm, relax_columns=relax)
    if kind == "random":
        matrix = random_symmetric_pattern(int(params["n"]), float(params["nnz"]), rng)
        return assembly_tree_from_matrix(matrix, relax_columns=relax)
    if kind == "banded":
        matrix = banded_matrix(int(params["n"]), int(params["bandwidth"]))
        return assembly_tree_from_matrix(matrix, relax_columns=relax)
    raise ValueError(f"unknown assembly recipe kind {kind!r}")


def assembly_dataset(
    scale: Scale = "small",
    *,
    seed: int = 2017,
    repetitions: int = 1,
) -> tuple[list[TaskTree], DatasetSpec]:
    """Assembly-tree surrogate dataset (UFL collection substitute).

    ``repetitions > 1`` re-draws the randomised recipes (random sparsity
    patterns) with fresh seeds, enlarging the dataset without changing its
    composition.  Deterministic recipes (grids, banded matrices) are included
    once per repetition as well so every repetition contributes the same mix.
    """
    if scale not in _ASSEMBLY_RECIPES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_ASSEMBLY_RECIPES)}")
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    rng = as_rng(seed)
    trees: list[TaskTree] = []
    for repetition in range(repetitions):
        for kind, params in _ASSEMBLY_RECIPES[scale]:
            if repetition > 0 and kind in ("grid2d_nd", "grid2d_band", "grid3d_nd", "banded"):
                # Vary the deterministic recipes slightly across repetitions so
                # they are not exact duplicates.
                params = dict(params)
                if "nx" in params:
                    params["nx"] = int(params["nx"]) + repetition
                if "n" in params:
                    params["n"] = int(params["n"]) + 37 * repetition
            trees.append(_assembly_tree(kind, params, rng))
    spec = DatasetSpec(name="assembly-surrogate", scale=scale, seed=seed, num_trees=len(trees))
    return trees, spec


#: Synthetic-tree sizes per scale (number of nodes, number of trees).
_SYNTHETIC_SIZES: dict[str, tuple[int, int]] = {
    "tiny": (200, 4),
    "small": (1000, 10),
    "medium": (5000, 20),
    "large": (20000, 50),
}


def synthetic_dataset(
    scale: Scale = "small",
    *,
    seed: int = 7011,
    num_nodes: int | None = None,
    num_trees: int | None = None,
) -> tuple[list[TaskTree], DatasetSpec]:
    """Synthetic dataset following the Section 7.1 distributions."""
    if scale not in _SYNTHETIC_SIZES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SYNTHETIC_SIZES)}")
    default_nodes, default_trees = _SYNTHETIC_SIZES[scale]
    nodes = num_nodes if num_nodes is not None else default_nodes
    count = num_trees if num_trees is not None else default_trees
    config = SyntheticTreeConfig(num_nodes=nodes)
    trees = synthetic_trees(count, config, rng=seed)
    spec = DatasetSpec(name="synthetic", scale=scale, seed=seed, num_trees=len(trees))
    return trees, spec


#: Heavy-leaf caterpillar recipes per scale: (spine, legs, leaf_output) plus
#: a jitter so the dataset is a family, not one repeated tree.
_HEAVYLEAF_SIZES: dict[str, tuple[tuple[int, int], ...]] = {
    "tiny": ((40, 2), (60, 1), (30, 3)),
    "small": ((300, 2), (500, 1), (200, 3), (400, 2), (250, 4)),
    "medium": ((800, 2), (1200, 1), (600, 3), (1000, 2), (700, 4), (900, 3)),
    "large": ((2000, 2), (3000, 1), (1500, 3), (2500, 2), (1800, 4), (2200, 3)),
}


def heavyleaf_dataset(
    scale: Scale = "small",
    *,
    seed: int = 4099,
) -> tuple[list[TaskTree], DatasetSpec]:
    """Heavy-leaf caterpillar dataset (deep chains fed by heavy leaf inputs).

    The worst-case family for conservative memory booking (the Activation
    policy books the whole chain at once) and the saturation regime of the
    batched lane engine: parallelism is bounded by the legs per spine node,
    so most of a processor-sweep grid collapses onto a few distinct
    schedules.  Leaf volumes are jittered per tree (seeded), so the trees
    are a family rather than copies.
    """
    if scale not in _HEAVYLEAF_SIZES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_HEAVYLEAF_SIZES)}")
    rng = as_rng(seed)
    trees = [
        families.heavy_leaf_caterpillar(
            spine,
            legs,
            leaf_output=50.0,
            spine_output=1.0,
            nexec=2.0,
            rng=rng,
            leaf_jitter=0.3,
        )
        for spine, legs in _HEAVYLEAF_SIZES[scale]
    ]
    spec = DatasetSpec(name="heavy-leaf", scale=scale, seed=seed, num_trees=len(trees))
    return trees, spec


def height_study_dataset(
    *,
    seed: int = 99,
    max_spine: int = 2000,
) -> tuple[list[TaskTree], DatasetSpec]:
    """Trees of widely varying heights for the overhead/height experiments.

    Mixes spines with small subtrees (deep, limited parallelism), caterpillars
    and bushy synthetic trees so the height axis of Figures 6 and 7 is well
    covered.
    """
    rng = as_rng(seed)
    trees: list[TaskTree] = []
    for spine in (50, 200, 800, max_spine):
        trees.append(
            families.spine_with_subtrees(
                spine, subtree_arity=2, subtree_depth=1, fout=4.0, nexec=1.0, ptime=2.0
            )
        )
        trees.append(families.caterpillar(spine, legs_per_node=2, fout=3.0, nexec=1.0, ptime=1.0))
    for nodes in (500, 2000):
        trees.extend(synthetic_trees(2, SyntheticTreeConfig(num_nodes=nodes), rng=rng))
    spec = DatasetSpec(name="height-study", scale="custom", seed=seed, num_trees=len(trees))
    return trees, spec
