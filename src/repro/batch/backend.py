"""The ``batched`` execution backend: lane-batched in-process sweeps.

:class:`BatchedBackend` walks the canonical :func:`~repro.experiments.backends.iter_instances`
enumeration tree by tree (the *lane grouping key*): every instance of one
tree shares its :class:`~repro.experiments.runner.InstanceContext` (orders,
minimum memory, :class:`~repro.schedulers.engine.SimWorkspace`), and the
instances of each batched heuristic become the **lanes** of one
:func:`~repro.batch.lanes.simulate_lanes` call — advanced together, one
event wavefront per step, over stacked state planes, with provably
identical lanes collapsed to a single simulation.

Heuristics without a lane kernel (``MemBookingRedTree``, the reference
implementations, anything registered by users) run through the ordinary
scalar :func:`~repro.experiments.runner.run_single` path inside the same
per-tree loop, so any sweep configuration is accepted and every record —
batched or scalar — lands at its canonical index.  The output is
byte-identical to :class:`~repro.experiments.backends.SerialBackend`
(timing fields aside), which the parity suite and the backend benchmarks
assert on the fig8 and fig15 configurations.

``batch_size`` bounds the number of lanes per ``simulate_lanes`` call
(``0`` — the ``"auto"`` of the CLI flag — keeps all instances of one
(tree, heuristic) in a single batch, which maximises lane collapse).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.task_tree import TaskTree
from ..experiments.backends import ExecutionBackend, runs_per_tree
from ..experiments.config import SweepConfig
from ..experiments.records import RecordTable
from ..schedulers import SCHEDULER_FACTORIES
from .lanes import LANE_KERNELS, simulate_lanes

__all__ = ["BatchedBackend"]


class BatchedBackend(ExecutionBackend):
    """Vectorised multi-instance execution over per-tree lane batches."""

    name = "batched"

    def __init__(self, batch_size: int = 0) -> None:
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 means one batch per tree)")
        self.batch_size = int(batch_size)

    def run(
        self, trees: Sequence[TaskTree], config: SweepConfig
    ) -> RecordTable:
        from ..experiments.runner import complete_record, prepare_instance, run_single

        trees = list(trees)
        per_tree = runs_per_tree(config)
        table = RecordTable.empty(len(trees) * per_tree)
        #: Canonical per-tree instance order (matches ``iter_instances``).
        combos = [
            (scheduler, num_processors, memory_factor)
            for num_processors in config.processors
            for memory_factor in config.memory_factors
            for scheduler in config.schedulers
        ]
        lane_positions: dict[str, list[int]] = {}
        for position, (scheduler, _, _) in enumerate(combos):
            kernel_cls = LANE_KERNELS.get(scheduler)
            # Only batch a heuristic while its factory still resolves to the
            # scalar class the lane kernel is pinned to; a patched registry
            # (e.g. the reference-engine benchmarks) falls back to scalar.
            if (
                kernel_cls is not None
                and SCHEDULER_FACTORIES.get(scheduler) is kernel_cls.scheduler_class
            ):
                lane_positions.setdefault(scheduler, []).append(position)

        for tree_index, tree in enumerate(trees):
            context = prepare_instance(tree, tree_index, config)
            base = tree_index * per_tree
            records: dict[int, dict[str, Any]] = {}
            for scheduler, positions in lane_positions.items():
                kernel_cls = LANE_KERNELS[scheduler]
                size = self.batch_size or len(positions)
                for begin in range(0, len(positions), size):
                    chunk = positions[begin : begin + size]
                    lanes = [
                        (combos[i][1], combos[i][2] * context.minimum_memory)
                        for i in chunk
                    ]
                    outcomes = simulate_lanes(
                        kernel_cls,
                        tree,
                        context.ao,
                        context.eo,
                        context.workspace,
                        lanes,
                        native=config.native,
                    )
                    for position, (result, is_clone) in zip(chunk, outcomes):
                        _, num_processors, memory_factor = combos[position]
                        records[position] = complete_record(
                            context,
                            scheduler,
                            num_processors,
                            memory_factor,
                            config,
                            result,
                            run_validation=not is_clone,
                        )
            for position, (scheduler, num_processors, memory_factor) in enumerate(combos):
                record = records.get(position)
                if record is None:
                    record = run_single(
                        context, scheduler, num_processors, memory_factor, config
                    )
                table.set_row(base + position, record)
        return table
