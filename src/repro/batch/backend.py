"""The ``batched`` execution backend: lane-batched in-process sweeps.

:class:`BatchedBackend` walks a :class:`~repro.experiments.plan.SweepPlan`
tree group by tree group (the *lane grouping key*): every instance of one
tree shares its :class:`~repro.experiments.runner.InstanceContext` (orders,
minimum memory, :class:`~repro.schedulers.engine.SimWorkspace`), and the
instances of each batched heuristic become the **lanes** of one
:func:`~repro.batch.lanes.simulate_lanes` call — advanced together, one
event wavefront per step, over stacked state planes, with provably
identical lanes collapsed to a single simulation.  The grouping itself is
a plan transform (:meth:`~repro.experiments.plan.SweepPlan.lane_groups`
evaluated with :func:`~repro.batch.lanes.batchable_scheduler`), so a
subset plan — the cache misses of a figure — batches exactly like the full
grid it was cut from.

Heuristics without a lane kernel (``MemBookingRedTree``, the reference
implementations, anything registered by users) run through the ordinary
scalar :func:`~repro.experiments.runner.run_single` path inside the same
per-tree loop, so any sweep configuration is accepted and every record —
batched or scalar — lands at its canonical row.  The output is
byte-identical to :class:`~repro.experiments.backends.SerialBackend`
(timing fields aside), which the parity suite and the backend benchmarks
assert on the fig8 and fig15 configurations.

``batch_size`` bounds the number of lanes per ``simulate_lanes`` call
(``0`` — the ``"auto"`` of the CLI flag — keeps all instances of one
(tree, heuristic) in a single batch, which maximises lane collapse).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.task_tree import TaskTree
from ..experiments.backends import ExecutionBackend
from ..experiments.plan import SweepPlan
from ..experiments.records import RecordTable
from .lanes import LANE_KERNELS, batchable_scheduler, simulate_lanes

__all__ = ["BatchedBackend"]


class BatchedBackend(ExecutionBackend):
    """Vectorised multi-instance execution over per-tree lane batches."""

    name = "batched"

    def __init__(self, batch_size: int = 0) -> None:
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 means one batch per tree)")
        self.batch_size = int(batch_size)

    def run_plan(
        self, trees: Sequence[TaskTree], plan: SweepPlan
    ) -> RecordTable:
        from ..experiments.runner import (
            complete_record,
            prepare_instance,
            resilient_run_single,
        )
        from ..resilience.faults import resolve_fault_plan
        from ..resilience.health import current_health

        config = plan.config
        faults = resolve_fault_plan(config.fault_plan)
        table = RecordTable.empty(len(plan))
        for tree_index, rows in plan.tree_groups():
            tree = trees[tree_index]
            context = prepare_instance(tree, tree_index, config)
            lane_rows, _ = plan.lane_groups(rows, batchable_scheduler)
            records: dict[int, dict[str, Any]] = {}
            for scheduler, positions in lane_rows.items():
                kernel_cls = LANE_KERNELS[scheduler]
                size = self.batch_size or len(positions)
                for begin in range(0, len(positions), size):
                    chunk = positions[begin : begin + size]
                    lanes = [
                        (plan.combo(row)[1], plan.combo(row)[2] * context.minimum_memory)
                        for row in chunk
                    ]
                    try:
                        if faults is not None:
                            faults.maybe_raise(
                                "lane-engine",
                                f"lane:{tree_index}:{scheduler}",
                                exc=RuntimeError,
                            )
                        outcomes = simulate_lanes(
                            kernel_cls,
                            tree,
                            context.ao,
                            context.eo,
                            context.workspace,
                            lanes,
                            native=config.native,
                        )
                    except Exception:
                        # Lane engine down for this batch: leave its rows out
                        # of ``records`` so the scalar loop below recomputes
                        # them one by one — same values, no lane collapse.  A
                        # systemic failure (e.g. native REQUIRED but absent)
                        # re-raises from the scalar path instead of looping.
                        current_health().record_degradation("batched->serial")
                        continue
                    for row, (result, is_clone) in zip(chunk, outcomes):
                        _, num_processors, memory_factor = plan.combo(row)
                        records[row] = complete_record(
                            context,
                            scheduler,
                            num_processors,
                            memory_factor,
                            config,
                            result,
                            run_validation=not is_clone,
                        )
            # Rows are written in ascending plan order whatever order the
            # lane batches produced them in: the dictionary-encoded
            # ``failure_reason`` codes must be assigned canonically.
            for row in rows:
                record = records.get(int(row))
                if record is None:
                    scheduler, num_processors, memory_factor = plan.combo(int(row))
                    record = resilient_run_single(
                        context, scheduler, num_processors, memory_factor, config, faults
                    )
                table.set_row(int(row), record)
        return table
