"""Batched lane engine: vectorised multi-instance simulation.

The paper's experiment grids simulate ~60 independent (processors, memory
factor, heuristic) instances of every tree.  This subsystem runs them as
**lanes**: stacked instances of one (tree, AO, EO) advanced in lock-step by
one stepper over shared static planes and ``[B, n]`` state planes, with
provably identical lanes collapsed to one simulation
(:mod:`repro.batch.lanes`), exposed as the ``"batched"`` execution backend
(:mod:`repro.batch.backend`), and fed zero-copy static planes through the
:class:`~repro.core.tree_store.TreeStore` arena's workspace plane columns
(:mod:`repro.batch.planes`).
"""

from .backend import BatchedBackend
from .lanes import (
    LANE_KERNELS,
    ActivationLaneKernel,
    MemBookingLaneKernel,
    simulate_lanes,
)
from .planes import WORKSPACE_PLANE_NAMES, workspace_planes

__all__ = [
    "BatchedBackend",
    "ActivationLaneKernel",
    "MemBookingLaneKernel",
    "LANE_KERNELS",
    "simulate_lanes",
    "WORKSPACE_PLANE_NAMES",
    "workspace_planes",
]
