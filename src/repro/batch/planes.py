"""Workspace plane columns: arena-resident static simulation planes.

A :class:`~repro.schedulers.engine.SimWorkspace` (children CSR, AO/EO
ranks, activation request/release blocks) and the tree-pure scalars of an
:class:`~repro.experiments.runner.InstanceContext` (minimum memory,
critical path, memory-time demand, height) are pure functions of
(tree, AO, EO) — yet before the arena grew plane columns every worker
process recomputed them per tree.  :func:`workspace_planes` computes them
once (through the exact same ``prepare_instance`` code path the workers
would run, so the values are bit-identical) and lays them out as the
optional **plane columns** of the version-2
:class:`~repro.core.tree_store.TreeStore` arena format; consumers pass the
per-tree plane dict to :func:`~repro.experiments.runner.prepare_instance`,
which rebuilds the orders and the workspace from the stored planes instead
of deriving them from scratch.

Plane names (per tree; dtypes int64 unless noted):

========================  ====================================================
``ws:child_offsets``      children CSR offsets (length ``n + 1``)
``ws:child_nodes``        children CSR node ids (length ``n - 1``)
``ws:ao_sequence``        activation order, position -> node
``ws:ao_rank``            activation order, node -> position
``ws:eo_sequence``        execution order, position -> node
``ws:eo_rank``            execution order, node -> position
``ws:request_ao``         float64 — booking request along the AO (Algorithm 1)
``ws:release``            float64 — per-node release volume on completion
``ws:scalars``            float64 — ``[minimum memory, critical path,``
                          ``memory-time demand, height]``
========================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task_tree import TaskTree
    from ..experiments.config import SweepConfig

__all__ = ["WORKSPACE_PLANE_NAMES", "context_planes_present", "workspace_planes"]

#: The canonical plane-column set (see the module docstring for semantics).
WORKSPACE_PLANE_NAMES: tuple[str, ...] = (
    "ws:child_offsets",
    "ws:child_nodes",
    "ws:ao_sequence",
    "ws:ao_rank",
    "ws:eo_sequence",
    "ws:eo_rank",
    "ws:request_ao",
    "ws:release",
    "ws:scalars",
)


def workspace_planes(
    trees: "Sequence[TaskTree]", config: "SweepConfig"
) -> dict[str, list[np.ndarray]]:
    """Compute the workspace plane columns of every tree for one sweep config.

    Returns ``{plane name: [one array per tree]}`` in the layout
    :meth:`repro.core.tree_store.TreeStore.pack` accepts as ``planes=``.
    The values are produced by :func:`~repro.experiments.runner.prepare_instance`
    itself — the code every worker would otherwise run — so a context
    rebuilt from these planes is indistinguishable from a freshly computed
    one.
    """
    from ..experiments.runner import prepare_instance

    planes: dict[str, list[np.ndarray]] = {name: [] for name in WORKSPACE_PLANE_NAMES}
    for index, tree in enumerate(trees):
        context = prepare_instance(tree, index, config)
        workspace = context.workspace
        offsets, nodes = tree.children_csr
        planes["ws:child_offsets"].append(np.asarray(offsets, dtype=np.int64))
        planes["ws:child_nodes"].append(np.asarray(nodes, dtype=np.int64))
        planes["ws:ao_sequence"].append(context.ao.sequence)
        planes["ws:ao_rank"].append(context.ao.rank)
        planes["ws:eo_sequence"].append(context.eo.sequence)
        planes["ws:eo_rank"].append(context.eo.rank)
        planes["ws:request_ao"].append(np.asarray(workspace.request_ao, dtype=np.float64))
        planes["ws:release"].append(np.asarray(workspace.release_list, dtype=np.float64))
        planes["ws:scalars"].append(
            np.asarray(
                [
                    context.minimum_memory,
                    context.critical_path,
                    context.memtime_demand,
                    float(context.height),
                ],
                dtype=np.float64,
            )
        )
    return planes


def context_planes_present(planes: Mapping[str, np.ndarray]) -> bool:
    """True when ``planes`` carries the full workspace plane-column set."""
    return all(name in planes for name in WORKSPACE_PLANE_NAMES)
