"""Lane-batched simulation stepper: B instances of one tree at once.

A *lane* is one (processors, memory limit) instance of a fixed
(tree, AO, EO, heuristic).  The experiment grids of the paper run ~60 such
instances per tree; :func:`simulate_lanes` resolves whole groups of them
per call instead of one full event loop per instance:

* per-node state is stacked one row per lane — activation flags, children
  counters, the MemBooking ``Booked``/``BookedBySubtree`` planes and state
  bytes — allocated once per batch as C-level copies of shared templates
  (the scalar path re-derives them per instance).  The rows are Python
  containers, the same list-over-ndarray trade the PR 4 scalar kernels
  documented: at sweep-grid batch widths (B ~ 20-40) per-element ndarray
  access and ``ufunc.at`` scatters measurably lose to CPython list
  indexing, so NumPy is reserved for the places it wins;
* the completion *events* of a stepped batch are one ``[B, p_max]``
  **processor slot plane**: slot ``s`` of lane ``l`` holds the finish time
  of the task running on processor ``s``.  Wide batches advance in
  lock-step, one **event wavefront** per step — a vectorised row-min
  yields every lane's next instant, one compare yields every completion —
  while narrow batches (what the collapse rounds usually leave; below
  :data:`_WAVEFRONT_MIN_LANES`) drain lane by lane over a plain event
  heap, which beats the wavefront's per-step NumPy overhead there.  Both
  paths deliver completions in the exact order of the scalar engine;
* the heuristic state transitions are the **shared kernel definitions**
  factored out of the scalar schedulers
  (:func:`repro.schedulers.activation.run_activation_scan`,
  :func:`repro.schedulers.membooking.dispatch_memory`,
  :func:`repro.schedulers.membooking.run_membooking_activation`), so the
  lane kernels cannot drift from the per-instance kernels: both run the
  identical ledger folds, tolerances and clamps, and the produced schedules
  are **bit-identical** to the scalar
  :class:`~repro.schedulers.activation.ActivationScheduler` /
  :class:`~repro.schedulers.membooking.MemBookingScheduler` (pinned by
  ``tests/test_batch_parity.py``, which also cross-checks the frozen
  :mod:`repro.schedulers.reference` generation).

Lane collapse
-------------
The throughput of a batch comes as much from **provable lane collapse** as
from the vectorised stepping: many instances of a grid are exact replays of
one another, and the engine detects that instead of re-simulating.

*Saturation collapse* (the processor axis).
    A lane that was **never processor-blocked** — its dispatch never left a
    ready task waiting — produced the unconstrained (``p = infinity``)
    schedule, and its maximum concurrency ``R*`` is the whole demand of
    that schedule.  Any lane with the same memory limit and ``p >= R*``
    provably replays it, bit for bit, down to the processor assignment
    (the free-processor stack of the engine never reaches ids ``>= R*``).
    On the paper's processor-sweep grids (``p in {2,4,8,16,32}``) the
    upper half of the axis collapses onto one simulation per memory
    factor as soon as the tree's parallelism saturates.

*Memory-slack collapse* (the memory-factor axis).
    A lane whose activation was **never memory-bound** — no activation
    attempt ever stopped because the budget ran out — admitted every
    candidate it ever saw, which is exactly what any lane with the same
    ``p`` and a *larger* limit would have done.  Those lanes replay it
    identically.

*Starvation collapse* (the memory-factor axis, ``EO == AO``).
    Both kernels activate in ascending AO rank, so when the execution
    priorities *are* the activation priorities, anything a larger budget
    could additionally activate ranks **after every task the smaller
    budget had ready** — extra memory can only change a dispatch at an
    instant where the ready pool drained, a processor sat idle, *and* an
    unactivated task with all children finished existed (an *orphan*).
    The engine tracks the minimum concurrency over exactly those instants
    (``starve_min``); any same-``p`` lane with a larger limit replays a
    lane with ``starve_min >= p`` schedule-for-schedule.  (Its booked
    trajectory differs — more admitted earlier — so such clones share the
    donor's schedule and records but not its booked-memory diagnostics,
    and they may not donate through the saturation rule, whose flags
    describe the donor's ready-pool trajectory.)

*Blocked-replay collapse* (the memory ladder of processor-blocked lanes).
    The rules above never touch the memory ladder of a lane that is
    processor-*limited*: such a lane is memory-bound at some instants
    (no slack), yet its stalls happen while a processor idles (no
    starvation certificate).  The kernels therefore record, at every
    memory-bound activation stop, the ledger level that stop would have
    needed to proceed — ``booked + next request`` for Activation,
    ``MBooked + missing booking`` for MemBooking — and ``bound_need`` is
    the minimum over the run.  A follower whose own (tolerance-inclusive)
    threshold still sits *below* ``bound_need`` is refused the exact same
    activations at the exact same instants: its entire trajectory
    (activation, ready pool, booked ledger, dispatch) replays the donor's
    verbatim, no ``EO == AO`` assumption needed.  Unlike starvation
    clones these replays are exact, so every diagnostic flag stays valid
    and they donate through every rule; the same certificate composes
    with the saturation argument (never-blocked donor, ``p_f >= R*``) to
    resolve followers that differ from the donor in *both* axes.

:func:`simulate_lanes` schedules lanes in **rounds**: each round runs the
largest-``p`` unresolved lane of each limit group (thinned to the smallest
limit per ``p`` — the likeliest future clones are deferred) as one batch,
then applies the collapse rules — plus the degenerate exact-duplicate
``(p, limit)`` case; a lane whose activation completes entirely at
``t = 0`` is simply a never-memory-bound lane, so the slack rule covers it
— to a fixed point, with resolved clones acting as donors at their own
``(p, limit)``.  Clones inherit the representative's schedule arrays and
peak memory; only their record-level fields (memory limit and ratios
derived from it) differ, which the caller derives per lane.

Timing: decision time is measured per step (one ``perf_counter`` pair
around the whole wavefront) and shared equally among the lanes that had
events in the step.  Wall-clock fields are the only ones allowed to differ
from the serial backend.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from heapq import heapify, heappop, heappush
from typing import Sequence

import numpy as np

from ..core.task_tree import TaskTree
from ..orders import Ordering
from ..analysis.registry import hot_kernel, plane_mutator
from ..schedulers.activation import ActivationScheduler, run_activation_scan
from ..schedulers.base import UNSCHEDULED, ScheduleResult, SchedulingError
from ..schedulers.engine import SimWorkspace
from ..schedulers.membooking import (
    ACT,
    CAND,
    FN,
    RUN,
    _UNSET,
    MemBookingScheduler,
    dispatch_memory,
    run_membooking_activation,
)
from ..schedulers.validation import memory_profile

__all__ = [
    "ActivationLaneKernel",
    "MemBookingLaneKernel",
    "LANE_KERNELS",
    "batchable_scheduler",
    "simulate_lanes",
]


class ActivationLaneKernel:
    """Batched per-lane state of the Activation heuristic (Algorithm 1).

    Per-node state is stacked one row per lane — activation flags as
    ``bytearray`` rows, children counters as flat list rows, the global
    ledger as per-lane Python floats — exactly the containers of the scalar
    kernel, whose ``UpdateCAND-ACT`` fold is shared verbatim through
    :func:`~repro.schedulers.activation.run_activation_scan`.  (An earlier
    revision kept the flags/counters as ``[B, n]`` ndarrays and scattered
    completions with ``np.ufunc.at`` across lanes; at the batch widths a
    sweep grid produces, B ~ 20-40, the per-call ufunc overhead measurably
    lost to CPython list indexing — the same list-over-ndarray trade the
    PR 4 scalar kernels documented — so the stacked rows are Python
    containers and NumPy is reserved for the engine's ``[B, p]`` slot
    planes, where the vectorised row-min genuinely wins.)
    """

    name = "Activation"
    scheduler_class = ActivationScheduler
    #: No per-start bookkeeping (mirrors the scalar kernel's absent hook).
    on_started = None

    def __init__(self, workspace: SimWorkspace, limits: Sequence[float]) -> None:
        ws = workspace
        n = self.n = ws.n
        B = self.B = len(limits)
        self._req_list = ws.request_ao_list
        self._req_ao = ws.request_ao
        self._ao_seq = ws.ao_sequence_list
        self._eo_rank = ws.eo_rank_list
        self._release = ws.release_list
        self._parent = ws.parent_list
        # Inlined MemoryLedger, one scalar triple per lane (limits differ).
        self._limits = [float(m) for m in limits]
        self._tol = [1e-9 * max(1.0, m) for m in self._limits]
        self._threshold = [m + t for m, t in zip(self._limits, self._tol)]
        self._booked = [0.0] * B
        self._peak = [0.0] * B
        self._next = [0] * B
        #: Memory-slack collapse flag: True once an activation attempt was
        #: stopped by the budget (the lane is "memory-bound").
        self.memory_bound = [False] * B
        #: Blocked-replay certificate: the minimum over every memory-bound
        #: stop of the budget (``booked + next request``) that stop would
        #: have needed to proceed (``inf`` while never bound).
        self.bound_need = [math.inf] * B
        # Stacked per-lane state rows (C-level copies of one template).
        self._activated = [bytearray(n) for _ in range(B)]
        counts = ws.num_children_list
        self._ch_not_fin = [counts.copy() for _ in range(B)]
        self.ready: list[list[tuple[int, int]]] = [[] for _ in range(B)]
        #: Unactivated tasks whose children have all finished: what a lane
        #: with a larger budget *could* have made ready right now.  Leaves
        #: qualify from the start; completions add nodes (the not-activated
        #: branch of ``on_finished``), activation removes them (the engine
        #: counts the ready-pushes of each ``activate`` call).
        self.orphans = [len(ws.leaves_list)] * B

    @hot_kernel
    def activate(self, lane: int) -> None:
        pos = self._next[lane]
        n = self.n
        if pos >= n:
            return
        booked = self._booked[lane]
        threshold = self._threshold[lane]
        req_list = self._req_list
        need = booked + req_list[pos]
        if need > threshold:
            self.memory_bound[lane] = True
            if need < self.bound_need[lane]:
                self.bound_need[lane] = need
            return
        pos, booked, peak = run_activation_scan(
            pos,
            n,
            booked,
            self._peak[lane],
            threshold,
            req_list,
            self._req_ao,
            self._ao_seq,
            self._activated[lane],
            self._ch_not_fin[lane],
            self._eo_rank,
            self.ready[lane],
        )
        if pos < n:
            self.memory_bound[lane] = True  # the scan stopped on the budget
            need = booked + req_list[pos]
            if need < self.bound_need[lane]:
                self.bound_need[lane] = need
        self._next[lane] = pos
        self._booked[lane] = booked
        self._peak[lane] = peak

    @hot_kernel
    def on_finished(self, lane_list: list[int], node_list: list[int]) -> None:
        # Sequential per lane in ascending node order — the pairs arrive
        # (lane-major, node ascending), exactly the delivery order of the
        # scalar engine's completion batch; the body is the scalar kernel's
        # ``_on_tasks_finished`` with the lane's rows in place of ``self``.
        booked = self._booked
        release = self._release
        tol = self._tol
        parent = self._parent
        eo_rank = self._eo_rank
        for lane, node in zip(lane_list, node_list):
            b = booked[lane] - release[node]
            if b < 0.0:
                if b < -tol[lane]:
                    raise RuntimeError(
                        f"released more memory than was booked (booked={b:.6g})"
                    )
                b = 0.0
            booked[lane] = b
            p = parent[node]
            if p >= 0:
                ch_not_fin = self._ch_not_fin[lane]
                ch_not_fin[p] -= 1
                if ch_not_fin[p] == 0:
                    if self._activated[lane][p]:
                        heappush(self.ready[lane], (eo_rank[p], p))
                    else:
                        self.orphans[lane] += 1

    @hot_kernel
    def bind_lane(self, lane: int):
        """Single-lane fast path: ``(activate, on_finished)`` closures.

        The per-lane drain loop of the engine calls the kernel once or twice
        per event instant; binding the lane's state rows as closure defaults
        removes the attribute and argument traffic of the generic methods
        while running the exact same transitions.
        """
        memory_bound = self.memory_bound
        bound_need = self.bound_need
        next_list = self._next
        booked_list = self._booked
        peak_list = self._peak

        # kernel-ok: closure (lane scalars live in the enclosing lists)
        def activate(
            n=self.n,
            lane=lane,
            threshold=self._threshold[lane],
            req_list=self._req_list,
            req_ao=self._req_ao,
            ao_seq=self._ao_seq,
            activated=self._activated[lane],
            ch_not_fin=self._ch_not_fin[lane],
            eo_rank=self._eo_rank,
            ready=self.ready[lane],
            scan=run_activation_scan,
        ):
            pos = next_list[lane]
            if pos >= n:
                return
            booked = booked_list[lane]
            need = booked + req_list[pos]
            if need > threshold:
                memory_bound[lane] = True
                if need < bound_need[lane]:
                    bound_need[lane] = need
                return
            pos, booked, peak = scan(
                pos, n, booked, peak_list[lane], threshold, req_list, req_ao,
                ao_seq, activated, ch_not_fin, eo_rank, ready,
            )
            if pos < n:
                memory_bound[lane] = True
                need = booked + req_list[pos]
                if need < bound_need[lane]:
                    bound_need[lane] = need
            next_list[lane] = pos
            booked_list[lane] = booked
            peak_list[lane] = peak

        orphans = self.orphans

        # kernel-ok: closure (ledger scalar written back to the lane list)
        def on_finished(
            nodes,
            lane=lane,
            release=self._release,
            neg_tol=-self._tol[lane],
            parent=self._parent,
            activated=self._activated[lane],
            ch_not_fin=self._ch_not_fin[lane],
            eo_rank=self._eo_rank,
            ready=self.ready[lane],
        ):
            booked = booked_list[lane]
            for node in nodes:
                booked -= release[node]
                if booked < 0.0:
                    if booked < neg_tol:
                        raise RuntimeError(
                            f"released more memory than was booked (booked={booked:.6g})"
                        )
                    booked = 0.0
                p = parent[node]
                if p >= 0:
                    ch_not_fin[p] -= 1
                    if ch_not_fin[p] == 0:
                        if activated[p]:
                            heappush(ready, (eo_rank[p], p))
                        else:
                            orphans[lane] += 1
            booked_list[lane] = booked

        return activate, on_finished

    def extras(self, lane: int) -> dict:
        return {
            "peak_booked_memory": self._peak[lane],
            "activated": self._next[lane],
        }


def _noop_remove(node: int) -> None:
    """Lazy candidate removal (the state flip invalidates the heap entry)."""


class MemBookingLaneKernel:
    """Batched per-lane state of MemBooking (Section 4, optimised structures).

    The booking walks (ALAP dispatch along ancestors, lazy subtree sums) are
    inherently sequential per lane, so the ``Booked``/``BookedBySubtree``
    planes and the state bytes live as per-lane flat lists — the same
    list-over-ndarray trade the PR 4 scalar kernels made — and every
    transition goes through the shared
    :func:`~repro.schedulers.membooking.dispatch_memory` /
    :func:`~repro.schedulers.membooking.run_membooking_activation`
    definitions.  The cross-lane wins are the engine's (slot-plane events,
    shared step overhead) plus lane collapse.
    """

    name = "MemBooking"
    scheduler_class = MemBookingScheduler

    @plane_mutator(note="builds the per-lane candidate-structure closures")
    def __init__(self, workspace: SimWorkspace, limits: Sequence[float]) -> None:
        ws = workspace
        n = self.n = ws.n
        B = self.B = len(limits)
        self._parent = ws.parent_list
        self._fout = ws.fout_list
        self._mem_needed = ws.mem_needed_list
        self._offsets = ws.child_offsets
        self._child_nodes = ws.child_nodes
        self._ao_rank = ws.ao_rank_list
        self._eo_rank = ws.eo_rank_list
        self._limits = [float(m) for m in limits]
        self._tol = [1e-9 * max(1.0, m) for m in self._limits]
        self._threshold = [m + t for m, t in zip(self._limits, self._tol)]
        self._mbooked = [0.0] * B
        self._peak = [0.0] * B
        self.memory_bound = [False] * B
        #: Blocked-replay certificate (see ActivationLaneKernel): minimum
        #: ledger level a budget-blocked candidate would have required.
        self.bound_need = [math.inf] * B
        self._booked = [[0.0] * n for _ in range(B)]
        self._bbs = [[_UNSET] * n for _ in range(B)]
        # The candidate heap after the leaf setup is lane-independent:
        # build it once, C-copy per lane (the scalar kernel re-pushes every
        # leaf per run).
        state0 = bytearray(n)
        cand0: list[tuple[int, int]] = []
        ao_rank = self._ao_rank
        for leaf in ws.leaves_list:
            state0[leaf] = CAND
            heappush(cand0, (ao_rank[leaf], leaf))
        self._state = [bytearray(state0) for _ in range(B)]
        self._cand = [cand0.copy() for _ in range(B)]
        self._ch_not_act = [ws.num_children_list.copy() for _ in range(B)]
        self._ch_not_fin = [ws.num_children_list.copy() for _ in range(B)]
        self.ready: list[list[tuple[int, int]]] = [[] for _ in range(B)]
        #: Not-yet-ACT tasks with every child finished (see ActivationLaneKernel).
        self.orphans = [len(ws.leaves_list)] * B
        # Per-lane candidate-structure closures (bound once, not per call).
        self._peeks = []
        self._makes = []
        self._marks = []
        eo_rank = self._eo_rank
        for lane in range(B):
            heap = self._cand[lane]
            state = self._state[lane]
            ready = self.ready[lane]

            def peek(heap=heap, state=state):
                while heap:
                    node = heap[0][1]
                    if state[node] == CAND:
                        return node
                    heappop(heap)  # stale entry of an already-activated node
                return None

            def make(node, heap=heap, state=state, rank=ao_rank):
                state[node] = CAND
                heappush(heap, (rank[node], node))

            def mark(node, ready=ready, rank=eo_rank):
                heappush(ready, (rank[node], node))

            self._peeks.append(peek)
            self._makes.append(make)
            self._marks.append(mark)

    @hot_kernel
    def activate(self, lane: int) -> None:
        mbooked, peak, _, bound = run_membooking_activation(
            self._peeks[lane],
            _noop_remove,
            self._makes[lane],
            self._marks[lane],
            self._booked[lane],
            self._bbs[lane],
            self._state[lane],
            self._parent,
            self._mem_needed,
            self._offsets,
            self._child_nodes,
            self._ch_not_act[lane],
            self._ch_not_fin[lane],
            self._mbooked[lane],
            self._threshold[lane],
            self._peak[lane],
            True,  # the Section 5.1 default, as in MemBookingScheduler
        )
        self._mbooked[lane] = mbooked
        self._peak[lane] = peak
        if bound:
            self.memory_bound[lane] = True
            if bound < self.bound_need[lane]:
                self.bound_need[lane] = bound

    @hot_kernel
    def on_started(self, lane: int, node: int) -> None:
        self._state[lane][node] = RUN

    @hot_kernel
    def on_finished(self, lane_list: list[int], node_list: list[int]) -> None:
        parent = self._parent
        eo_rank = self._eo_rank
        for lane, node in zip(lane_list, node_list):
            state = self._state[lane]
            state[node] = FN
            self._mbooked[lane], self._peak[lane] = dispatch_memory(
                node,
                self._booked[lane],
                self._bbs[lane],
                state,
                parent,
                self._fout,
                self._mem_needed,
                self._mbooked[lane],
                self._tol[lane],
                self._peak[lane],
                True,
            )
            p = parent[node]
            if p >= 0:
                ch_not_fin = self._ch_not_fin[lane]
                ch_not_fin[p] -= 1
                if ch_not_fin[p] == 0:
                    if state[p] == ACT:
                        heappush(self.ready[lane], (eo_rank[p], p))
                    else:
                        self.orphans[lane] += 1

    @hot_kernel
    def bind_lane(self, lane: int):
        """Single-lane fast path closures (see ActivationLaneKernel.bind_lane)."""
        mbooked_list = self._mbooked
        peak_list = self._peak
        memory_bound = self.memory_bound
        bound_need = self.bound_need

        # kernel-ok: closure (ledger scalars live in the enclosing lists)
        def activate(
            lane=lane,
            peek=self._peeks[lane],
            make=self._makes[lane],
            mark=self._marks[lane],
            booked=self._booked[lane],
            bbs=self._bbs[lane],
            state=self._state[lane],
            parent=self._parent,
            mem_needed=self._mem_needed,
            offsets=self._offsets,
            child_nodes=self._child_nodes,
            ch_not_act=self._ch_not_act[lane],
            ch_not_fin=self._ch_not_fin[lane],
            threshold=self._threshold[lane],
            run=run_membooking_activation,
        ):
            mbooked, peak, _, bound = run(
                peek, _noop_remove, make, mark, booked, bbs, state, parent,
                mem_needed, offsets, child_nodes, ch_not_act, ch_not_fin,
                mbooked_list[lane], threshold, peak_list[lane], True,
            )
            mbooked_list[lane] = mbooked
            peak_list[lane] = peak
            if bound:
                memory_bound[lane] = True
                if bound < bound_need[lane]:
                    bound_need[lane] = bound

        orphans = self.orphans

        # kernel-ok: closure (ledger scalars written back to the lane lists)
        def on_finished(
            nodes,
            lane=lane,
            booked=self._booked[lane],
            bbs=self._bbs[lane],
            state=self._state[lane],
            parent=self._parent,
            fout=self._fout,
            mem_needed=self._mem_needed,
            tol=self._tol[lane],
            ch_not_fin=self._ch_not_fin[lane],
            eo_rank=self._eo_rank,
            ready=self.ready[lane],
            dispatch=dispatch_memory,
        ):
            for node in nodes:
                state[node] = FN
                mbooked_list[lane], peak_list[lane] = dispatch(
                    node, booked, bbs, state, parent, fout, mem_needed,
                    mbooked_list[lane], tol, peak_list[lane], True,
                )
                p = parent[node]
                if p >= 0:
                    ch_not_fin[p] -= 1
                    if ch_not_fin[p] == 0:
                        if state[p] == ACT:
                            heappush(ready, (eo_rank[p], p))
                        else:
                            orphans[lane] += 1

        return activate, on_finished

    def extras(self, lane: int) -> dict:
        return {"peak_booked_memory": self._peak[lane]}


#: Below this many concurrently-stepped lanes the vectorised slot-plane
#: wavefront costs more per event than a plain per-lane event heap (NumPy
#: call overhead does not amortise over a handful of rows), so `_run_batch`
#: drains narrow batches lane by lane instead.
_WAVEFRONT_MIN_LANES = 8

#: Scheduler names the batched backend can run through a lane kernel; each
#: kernel carries the scalar class it is pinned to, so a patched factory
#: registry (the reference-engine benchmarks) falls back to scalar.
LANE_KERNELS: dict[str, type] = {
    ActivationLaneKernel.name: ActivationLaneKernel,
    MemBookingLaneKernel.name: MemBookingLaneKernel,
}

def batchable_scheduler(name: str) -> bool:
    """Whether the batched backend may run ``name`` through a lane kernel.

    True only while the scheduler's factory still resolves to the scalar
    class the lane kernel is pinned to; a patched registry (e.g. the
    reference-engine benchmarks) must fall back to the scalar path.  This is
    the ``batchable`` predicate
    :meth:`~repro.experiments.plan.SweepPlan.lane_groups` is evaluated with.
    """
    from ..schedulers import SCHEDULER_FACTORIES

    kernel_cls = LANE_KERNELS.get(name)
    return (
        kernel_cls is not None
        and SCHEDULER_FACTORIES.get(name) is kernel_cls.scheduler_class
    )


#: Process-wide tally of which collapse rule resolved how many lanes,
#: accumulated across every :func:`simulate_lanes` call.  Diagnostic only:
#: the batch speed benchmark snapshots it around a grid to report the
#: yield of each rule next to the simulated/collapsed counts.
collapse_rule_counts: Counter = Counter()


class _LaneSim:
    """Raw outcome of one actually-simulated lane (pre-record, pre-profile)."""

    __slots__ = (
        "start",
        "finish",
        "processor",
        "clock",
        "finished",
        "num_events",
        "failure",
        "decision",
        "extras",
        "peak_running",
        "never_blocked",
        "never_bound",
        "starve_min",
        "bound_need",
    )


def _run_batch_native(
    kernel_cls: type,
    workspace: SimWorkspace,
    lanes: Sequence[tuple[int, float]],
    native: bool | None,
) -> "list[_LaneSim] | None":
    """Run every lane of the batch through the compiled C stepper.

    Returns ``None`` when native kernels are off or unavailable (the caller
    falls back to the Python wavefront).  Each lane is one C call over the
    shared workspace planes; the returned :class:`_LaneSim` carries the
    exact schedule arrays *and* the exact collapse diagnostics
    (``peak_running`` / ``never_blocked`` / ``never_bound`` /
    ``starve_min``, with the per-batch starvation sentinel) the Python
    engine would have produced, so the collapse rounds of
    :func:`simulate_lanes` take identical decisions either way.
    """
    if kernel_cls is ActivationLaneKernel:
        kernel_name = "activation"
    elif kernel_cls is MemBookingLaneKernel:
        kernel_name = "membooking"
    else:
        return None
    from .. import native as native_mod

    kernels = native_mod.native_kernels(native)
    if kernels is None:
        return None
    planes = workspace.native_planes()
    pmax = max(int(p) for p, _ in lanes)
    starve_init = workspace.n + pmax + 1
    perf_counter = time.perf_counter
    sims: list[_LaneSim] = []
    for num_processors, memory_limit in lanes:
        tic = perf_counter()
        outcome = native_mod.simulate(
            kernels,
            kernel_name,
            planes,
            int(num_processors),
            float(memory_limit),
            starve_init=starve_init,
        )
        seconds = perf_counter() - tic
        sim = _LaneSim()
        sim.start = outcome.start
        sim.finish = outcome.finish
        sim.processor = outcome.processor
        sim.clock = outcome.clock
        sim.finished = outcome.finished
        sim.num_events = outcome.num_events
        sim.failure = outcome.failure
        sim.decision = seconds
        sim.extras = outcome.extras
        sim.peak_running = outcome.peak_running
        sim.never_blocked = not outcome.blocked
        sim.never_bound = not outcome.memory_bound
        sim.starve_min = outcome.starve_min
        sim.bound_need = outcome.bound_need
        sims.append(sim)
    return sims


@hot_kernel(note="batched wavefront event loop")
def _run_batch(
    kernel_cls: type,
    workspace: SimWorkspace,
    lanes: Sequence[tuple[int, float]],
    native: bool | None = None,
) -> list[_LaneSim]:
    """Advance every lane of one batch to completion.

    When the compiled kernel plane is enabled (and ``kernel_cls`` is one of
    the built-in lane kernels), each lane is simulated by one C call
    instead; the Python paths below remain the fallback and the oracle.
    Wide batches step in lock-step, one event wavefront per iteration: the
    vectorised slot-plane scan yields every lane's completions, the kernel
    consumes them as one batch, then each lane activates and dispatches at
    its own instant.  Narrow batches drain lane by lane over a plain event
    heap (see :data:`_WAVEFRONT_MIN_LANES`); both paths run the identical
    transitions in the identical order.
    """
    native_sims = _run_batch_native(kernel_cls, workspace, lanes, native)
    if native_sims is not None:
        return native_sims
    B = len(lanes)
    n = workspace.n
    nan = math.nan
    inf = math.inf
    procs = [int(p) for p, _ in lanes]
    limits = [float(m) for _, m in lanes]
    perf_counter = time.perf_counter

    tic = perf_counter()
    kernel = kernel_cls(workspace, limits)
    on_started = kernel.on_started
    activate = kernel.activate
    on_finished = kernel.on_finished
    ready = kernel.ready
    ptime = workspace.ptime_list

    # Flat per-task result state, one row per lane (lists, as in the engine).
    start = [[nan] * n for _ in range(B)]
    finish = [[nan] * n for _ in range(B)]
    processor = [[UNSCHEDULED] * n for _ in range(B)]
    free = [list(range(p - 1, -1, -1)) for p in procs]  # pop() gives proc 0 first
    pmax = max(procs)
    # The event wavefront: per-lane processor slots (slot id == proc id).
    slot_time = np.full((B, pmax), inf, dtype=np.float64)
    slot_node = np.zeros((B, pmax), dtype=np.int64)
    slot_time_rows = list(slot_time)
    slot_node_rows = list(slot_node)
    clock = [0.0] * B
    running = [0] * B
    finished = [0] * B
    num_events = [0] * B
    failure: list[str | None] = [None] * B
    decision = [0.0] * B
    peak_running = [0] * B
    blocked = [False] * B  # processor-blocked at least once
    # Starvation tracking for the memory-slack/starvation collapse rule:
    # the minimum concurrency observed at any instant where the ready pool
    # drained while unactivated tasks remained.  A processor count p was
    # "never starved by memory" on this schedule iff starve_min >= p.
    big = n + pmax + 1
    starve_min = [big] * B
    orphans = kernel.orphans

    # kernel-ok: closure (the dispatch step reads/writes the batch planes)
    def dispatch(lane: int) -> None:
        """Assign activated & available tasks to idle processors (EO order)."""
        fp = free[lane]
        rd = ready[lane]
        if not rd:
            if orphans[lane] > 0 and running[lane] < starve_min[lane]:
                starve_min[lane] = running[lane]
            return
        if not fp:
            blocked[lane] = True
            return
        clk = clock[lane]
        st = start[lane]
        fi = finish[lane]
        pr = processor[lane]
        times_row = slot_time_rows[lane]
        nodes_row = slot_node_rows[lane]
        started = 0
        while fp and rd:
            node = heappop(rd)[1]
            if on_started is not None:
                on_started(lane, node)
            proc = fp.pop()
            st[node] = clk
            f = clk + ptime[node]
            fi[node] = f
            pr[node] = proc
            times_row[proc] = f
            nodes_row[proc] = node
            started += 1
        total = running[lane] + started
        running[lane] = total
        if total > peak_running[lane]:
            peak_running[lane] = total
        if rd:
            if not fp:
                blocked[lane] = True
        elif orphans[lane] > 0 and total < starve_min[lane]:
            starve_min[lane] = total

    # --- t = 0 event ---------------------------------------------------
    for lane in range(B):
        activate(lane)
        # Ready-pushes of an activate call are exactly the activations of
        # nodes whose children were already done — i.e. consumed orphans.
        orphans[lane] -= len(ready[lane])
        dispatch(lane)
        num_events[lane] += 1
        if running[lane] == 0 and finished[lane] < n:
            failure[lane] = (
                "no task can be started at t=0: the memory bound is too small "
                "for the first activations"
            )
    step_seconds = perf_counter() - tic
    share = step_seconds / B
    for lane in range(B):
        decision[lane] += share

    # --- main loop ------------------------------------------------------
    act_list = [lane for lane in range(B) if running[lane] > 0]

    if len(act_list) <= _WAVEFRONT_MIN_LANES:
        # Narrow batch (the collapse rounds usually leave a handful of
        # leaders): the vectorised wavefront cannot amortise its per-step
        # NumPy overhead, so drain each lane with a plain event heap —
        # identical transitions, identical delivery order.
        finished_now: list[int] = []
        for lane in act_list:
            tic = perf_counter()
            lane_activate, lane_on_finished = kernel.bind_lane(lane)
            events = [  # kernel-ok: loop-alloc (per-lane event-heap seed)
                (t, int(node))
                for t, node in zip(slot_time_rows[lane].tolist(), slot_node_rows[lane].tolist())
                if t != inf
            ]
            heapify(events)
            fp = free[lane]
            rd = ready[lane]
            st = start[lane]
            fi = finish[lane]
            pr = processor[lane]
            finished_now.clear()
            while events:
                clk = events[0][0]
                clock[lane] = clk
                finished_now.clear()
                while events and events[0][0] == clk:
                    finished_now.append(heappop(events)[1])
                completed_now = len(finished_now)
                running[lane] -= completed_now
                finished[lane] += completed_now
                num_events[lane] += completed_now
                for node in finished_now:
                    fp.append(pr[node])
                lane_on_finished(finished_now)
                pool = len(rd)
                lane_activate()
                pushed = len(rd) - pool
                if pushed:
                    orphans[lane] -= pushed
                # Inline dispatch (heap events instead of slot writes).
                if rd:
                    if fp:
                        started = 0
                        while fp and rd:
                            node = heappop(rd)[1]
                            if on_started is not None:
                                on_started(lane, node)
                            proc = fp.pop()
                            st[node] = clk
                            f = clk + ptime[node]
                            fi[node] = f
                            pr[node] = proc
                            heappush(events, (f, node))
                            started += 1
                        total = running[lane] + started
                        running[lane] = total
                        if total > peak_running[lane]:
                            peak_running[lane] = total
                        if rd:
                            if not fp:
                                blocked[lane] = True
                        elif orphans[lane] > 0 and total < starve_min[lane]:
                            starve_min[lane] = total
                    else:
                        blocked[lane] = True
                elif orphans[lane] > 0 and running[lane] < starve_min[lane]:
                    starve_min[lane] = running[lane]
                if running[lane] == 0 and finished[lane] < n:
                    failure[lane] = (
                        f"deadlock at t={clock[lane]:.6g}: {n - finished[lane]} tasks "
                        "remain but none is activated and available under the memory bound"
                    )
                    break
            decision[lane] += perf_counter() - tic
        act_list = []

    full = len(act_list) == B  # the common case until lanes start finishing
    act = None if full else np.asarray(act_list, dtype=np.int64)
    while act_list:
        tic = perf_counter()
        num_active = len(act_list)
        # One wavefront: the vectorised row-min over the slot plane yields
        # every active lane's next event instant and its completions.
        times = slot_time if full else slot_time[act]
        clocks = times.min(axis=1)  # every active lane has >= 1 running task
        rows, cols = np.nonzero(times == clocks[:, None])
        if rows.size == num_active:
            # Fast path: exactly one completion per lane (rows is then the
            # identity over act and already lane-major).
            lanes_arr = rows if full else act
            nodes_arr = slot_node[lanes_arr, cols]
        else:
            lanes_arr = rows if full else act[rows]
            nodes_arr = slot_node[lanes_arr, cols]
            # Deliver completions lane-major, ascending node within a lane —
            # the tie order of the scalar engine's event heap.
            order = np.lexsort((nodes_arr, rows))
            cols = cols[order]
            lanes_arr = lanes_arr[order]
            nodes_arr = nodes_arr[order]
        slot_time[lanes_arr, cols] = inf
        lane_list = lanes_arr.tolist()
        node_list = nodes_arr.tolist()
        for lane, col in zip(lane_list, cols.tolist()):
            free[lane].append(col)  # slot id is the processor id
            running[lane] -= 1
            finished[lane] += 1
            num_events[lane] += 1
        on_finished(lane_list, node_list)
        clock_list = clocks.tolist()
        stalled = False
        for index, lane in enumerate(act_list):
            clock[lane] = clock_list[index]
            pool = len(ready[lane])
            activate(lane)
            pushed = len(ready[lane]) - pool
            if pushed:
                orphans[lane] -= pushed
            dispatch(lane)
            if running[lane] == 0:
                stalled = True
                if finished[lane] < n:
                    failure[lane] = (
                        f"deadlock at t={clock[lane]:.6g}: {n - finished[lane]} tasks "
                        "remain but none is activated and available under the memory bound"
                    )
        step_seconds = perf_counter() - tic
        share = step_seconds / num_active
        for lane in act_list:
            decision[lane] += share
        if stalled:
            # kernel-ok: loop-alloc (rare stall path rebuilds the active set)
            act_list = [lane for lane in act_list if running[lane] > 0]
            full = False
            act = np.asarray(act_list, dtype=np.int64)  # kernel-ok: loop-alloc

    # --- collect --------------------------------------------------------
    sims: list[_LaneSim] = []
    for lane in range(B):
        sim = _LaneSim()
        sim.start = np.asarray(start[lane], dtype=np.float64)  # kernel-ok: loop-alloc
        sim.finish = np.asarray(finish[lane], dtype=np.float64)  # kernel-ok: loop-alloc
        sim.processor = np.asarray(processor[lane], dtype=np.int64)  # kernel-ok: loop-alloc
        sim.clock = clock[lane]
        sim.finished = finished[lane]
        sim.num_events = num_events[lane]
        sim.failure = failure[lane]
        sim.decision = decision[lane]
        sim.extras = kernel.extras(lane)
        sim.peak_running = peak_running[lane]
        sim.never_blocked = not blocked[lane]
        sim.never_bound = not kernel.memory_bound[lane]
        sim.starve_min = starve_min[lane]
        sim.bound_need = kernel.bound_need[lane]
        sims.append(sim)
    return sims


def simulate_lanes(
    kernel_cls: type,
    tree: TaskTree,
    ao: Ordering,
    eo: Ordering,
    workspace: SimWorkspace | None,
    lanes: Sequence[tuple[int, float]],
    native: bool | None = None,
) -> list[tuple[ScheduleResult, bool]]:
    """Simulate every ``(processors, memory limit)`` lane of one tree.

    Lanes are resolved in rounds: each round simulates, per distinct memory
    limit, the largest-``p`` unresolved lane as one lock-step batch
    (:func:`_run_batch`), then applies the saturation and memory-slack
    collapse rules of the module docstring to resolve followers without
    simulating them.  Returns one ``(result, is_clone)`` pair per lane, in
    lane order; clones share their representative's schedule arrays and
    peak memory.  The results are bit-identical to running
    ``kernel_cls.scheduler_class`` per instance — wall-clock
    ``scheduling_seconds`` aside.
    """
    if not lanes:
        return []
    # Same argument validation as Scheduler.schedule, once per batch.
    for num_processors, memory_limit in lanes:
        if num_processors < 1:
            raise SchedulingError("num_processors must be at least 1")
        if not math.isfinite(memory_limit) or memory_limit <= 0:
            raise SchedulingError("memory_limit must be a positive finite number")
    if ao.n != tree.n or eo.n != tree.n:
        raise SchedulingError("orders must cover exactly the nodes of the tree")
    if not ao.is_topological(tree):
        raise SchedulingError("the activation order must be a topological order")
    if workspace is None or not workspace.matches(tree, ao, eo):
        workspace = SimWorkspace(tree, ao, eo)

    B = len(lanes)
    procs = [int(p) for p, _ in lanes]
    limits = [float(m) for _, m in lanes]
    #: The starvation rule's rank argument needs the execution priorities to
    #: *be* the activation priorities (the setup of every main figure).
    shared_order = eo is ao
    sims: dict[int, _LaneSim] = {}
    clone_of: dict[int, int] = {}
    #: How each clone was resolved.  A *starvation* clone shares its donor's
    #: schedule but not its ready-pool trajectory (a larger budget keeps
    #: more tasks waiting even when none of them can start), so its
    #: ``never_blocked`` / ``peak_running`` flags describe the donor's
    #: memory limit, not the clone's — such lanes must not donate through
    #: the saturation or blocked-replay rules.  Saturation, slack,
    #: blocked-replay and duplicate clones replay the donor's activation
    #: *and* ready trajectories, so every flag stays
    #: valid; a starvation clone's ``starve_min`` is a conservative lower
    #: bound of its real one (its fuller pool can only starve less), which
    #: is exactly the direction the starvation test needs.
    clone_rule: dict[int, str] = {}
    pending = set(range(B))

    def try_collapse() -> None:
        """Resolve pending lanes against every already-resolved lane.

        Clones act as donors at their own ``(p, limit)`` — with the
        starvation caveat above — and the loop iterates to a fixed point so
        chains of clones resolve within one call.
        """
        progress = True
        while progress and pending:
            progress = False
            for follower in sorted(pending):
                p_f = procs[follower]
                m_f = limits[follower]
                # The follower's ledger threshold, exactly as its own
                # simulation would compute it (tolerance included).
                t_f = m_f + 1e-9 * max(1.0, m_f)
                for donor in range(B):
                    if donor == follower or (donor in pending):
                        continue
                    src = clone_of.get(donor, donor)
                    sim = sims[src]
                    p_d = procs[donor]
                    m_d = limits[donor]
                    same_p = p_f == p_d
                    if same_p and m_f == m_d:
                        rule = "duplicate"
                    elif (
                        m_f == m_d
                        and sim.never_blocked
                        and p_f >= sim.peak_running
                        and clone_rule.get(donor) != "starvation"
                    ):
                        # Saturation collapse: the donor ran the
                        # unconstrained schedule; p_f covers its concurrency.
                        rule = "saturation"
                    elif same_p and m_f > m_d and sim.never_bound:
                        # Memory-slack collapse: the donor's activation
                        # admitted everything it ever saw.
                        rule = "slack"
                    elif (
                        m_f > m_d
                        and t_f < sim.bound_need
                        and clone_rule.get(donor) != "starvation"
                        and (
                            same_p
                            or (sim.never_blocked and p_f >= sim.peak_running)
                        )
                    ):
                        # Blocked-replay collapse: the follower's larger
                        # budget still sits strictly below every ledger level
                        # a memory-bound stop of the donor would have needed
                        # (``bound_need``), so the follower is refused the
                        # exact same activations at the exact same instants —
                        # its whole trajectory (activation, ready pool,
                        # ledger, dispatch) replays the donor's verbatim.
                        # This is the rule that finally collapses the memory
                        # ladder of processor-*blocked* lanes, which slack
                        # (never bound) and starvation (no idle processor at
                        # any memory stall) can never certify; and because
                        # the replay is exact it composes with the saturation
                        # argument to resolve followers differing in *both*
                        # axes (``p_f >= R*`` of a never-blocked donor).
                        rule = "blocked-replay"
                    elif (
                        shared_order
                        and same_p
                        and m_f > m_d
                        and sim.starve_min >= p_f
                    ):
                        # Starvation collapse: the donor never idled one of
                        # p_f processors while activation was memory-stalled,
                        # so a larger budget could not have changed a single
                        # dispatch (EO == AO: extra activations always rank
                        # after every task the donor had ready).
                        rule = "starvation"
                    else:
                        continue
                    clone_of[follower] = src
                    # Provenance is inherited through starvation steps: a
                    # duplicate of a starvation clone is still
                    # starvation-limited (its flags describe the donor's
                    # budget).  Every other rule — blocked-replay included —
                    # produces an *exact* trajectory replay, so those clones
                    # keep valid flags and donate through every rule.
                    if "starvation" in (rule, clone_rule.get(donor)):
                        clone_rule[follower] = "starvation"
                    else:
                        clone_rule[follower] = rule
                    collapse_rule_counts[rule] += 1
                    pending.discard(follower)
                    progress = True
                    break

    while pending:
        # Round leaders: per distinct limit the largest-p unresolved lane,
        # thinned to the smallest limit per processor count — the remaining
        # same-p lanes often become starvation/slack clones of it, so
        # simulating them now would waste the round.
        by_limit: dict[float, int] = {}
        for index in sorted(pending):
            best = by_limit.get(limits[index])
            if best is None or procs[index] > procs[best]:
                by_limit[limits[index]] = index
        by_proc: dict[int, int] = {}
        for index in by_limit.values():
            best = by_proc.get(procs[index])
            if best is None or limits[index] < limits[best]:
                by_proc[procs[index]] = index
        batch = sorted(by_proc.values())
        for index, sim in zip(
            batch,
            _run_batch(kernel_cls, workspace, [lanes[i] for i in batch], native=native),
        ):
            sims[index] = sim
            pending.discard(index)
        try_collapse()

    outcomes: list[tuple[ScheduleResult, bool]] = []
    # One memory profile (and one validation, at the caller) per distinct
    # schedule: every clone of the round loop shares its donor's _LaneSim.
    peaks: dict[int, float] = {}
    for lane in range(B):
        src = clone_of.get(lane, lane)
        sim = sims[src]
        completed = sim.finished == tree.n
        result = ScheduleResult(
            scheduler=kernel_cls.name,
            tree_size=tree.n,
            num_processors=procs[lane],
            memory_limit=limits[lane],
            completed=completed,
            makespan=sim.clock if completed else math.inf,
            start_times=sim.start,
            finish_times=sim.finish,
            processor=sim.processor,
            peak_memory=math.nan,
            scheduling_seconds=sim.decision,
            num_events=sim.num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=sim.failure,
            extras=dict(sim.extras),
        )
        key = id(sim)
        peak = peaks.get(key)
        is_clone = peak is not None
        if peak is None:
            peak = peaks[key] = memory_profile(tree, result).peak
        result.peak_memory = peak
        outcomes.append((result, is_clone))
    return outcomes
