"""``memtree`` command line interface.

Six sub-commands cover the typical workflows of the library:

``memtree generate``
    Generate a dataset (synthetic trees or the assembly-tree surrogate) and
    save it to a directory of JSON files.
``memtree info``
    Print the structural statistics of a tree file (or of every tree of a
    dataset directory).
``memtree schedule``
    Schedule one tree file — or sweep a whole dataset directory — with a
    chosen heuristic, memory factor and processor count, and print the
    outcome.  On a directory, ``--jobs N`` fans the trees out over ``N``
    worker processes (per-tree orders and minimum memory are computed once
    per tree, and the rows come back in deterministic dataset order).
``memtree lint``
    Run the static kernel-contract analyzer (:mod:`repro.analysis`) over the
    package (or given paths): compilable-subset purity of the registered hot
    kernels, plane dtype contracts, and the scalar/lane anti-drift rule.
    Exits nonzero on findings that are neither waived in source
    (``# kernel-ok: <rule>``) nor recorded in a committed baseline.
``memtree figure``
    Reproduce one of the paper's figures/tables and print its series, with
    an optional CSV export.  ``--jobs N`` parallelises the underlying sweep
    without changing the reported series; ``--cache-dir DIR`` keeps a
    persistent result cache (saved
    :class:`~repro.experiments.records.RecordTable` files keyed by dataset
    and sweep config), so re-running a figure at the same scale loads the
    recorded results instead of re-simulating; ``--workload-cache-dir DIR``
    does the same for the *generated datasets* (packed
    :class:`~repro.core.tree_store.TreeStore` arenas keyed by dataset,
    scale, seed and generator version, mmap-loaded as zero-copy views);
    ``--dry-run`` prints the figure's assembled
    :class:`~repro.experiments.plan.SweepPlan` (instance count, predicted
    cache hits, lane groups) without simulating anything.
``memtree suite``
    Run the whole evaluation suite (every figure, or ``--figures`` for a
    subset) and write per-figure text/CSV files plus ``summary.md`` and
    ``plan-stats.json``; overlapping figures share simulations through the
    instance-level result cache, and ``--dry-run`` prints the concatenated
    deduplicated plan.

Both sweep commands take ``--backend`` to pick the execution strategy
(registered through :func:`repro.experiments.backends.register_backend`):
``serial``, ``process`` (one pickled tree per worker task),
``shared-memory``, which packs the dataset into a
:class:`~repro.core.tree_store.TreeStore` arena shipped once through
:mod:`multiprocessing.shared_memory` and schedules at instance granularity —
the right choice when a few huge trees must saturate many workers — or
``batched``, the lane engine of :mod:`repro.batch`: all instances of one
tree advance through one in-process stepper with provably identical lanes
collapsed to a single simulation (``--batch-size`` bounds the lanes per
batch; ``0`` = all instances of a tree).  The default ``auto`` keeps the
historical behaviour (serial for ``--jobs 1``, per-tree chunking
otherwise); the records are identical for every backend.

Examples
--------
::

    memtree generate synthetic --num-trees 5 --num-nodes 1000 --out trees/
    memtree info trees/tree_00000.json
    memtree schedule trees/tree_00000.json --scheduler MemBooking \\
            --processors 8 --memory-factor 2
    memtree schedule trees/ --scheduler MemBooking --memory-factor 2 --jobs 4
    memtree figure fig10 --scale tiny --jobs 4
    memtree lint --json lint-report.json
    memtree figure fig15 --scale tiny --jobs 2 --backend shared-memory
    memtree figure fig10 --scale tiny --dry-run
    memtree suite --scale tiny --out results/ --dry-run
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .core import load_dataset, load_json, save_dataset, tree_stats
from .core.task_tree import TaskTree
from .experiments import (
    FIGURE_SPECS,
    FIGURES,
    InMemoryRowCache,
    ResultCache,
    RunContext,
    SweepConfig,
    backends as _backends,
    format_plan_report,
    plan_report,
    run_figure,
    run_sweep,
    write_series_csv,
)
from .orders import ORDER_FACTORIES, make_order, minimum_memory_postorder, sequential_peak_memory
from .schedulers import SCHEDULER_FACTORIES, make_scheduler
from .workloads import WorkloadCache, assembly_dataset, heavyleaf_dataset, synthetic_dataset

__all__ = ["main", "build_parser"]


def _jobs_count(value: str) -> int:
    """argparse type for ``--jobs``: a non-negative int (0 = one per CPU)."""
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the ``memtree`` command."""
    parser = argparse.ArgumentParser(
        prog="memtree",
        description="Dynamic memory-aware task-tree scheduling (IPDPS 2017 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"memtree {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a tree dataset")
    generate.add_argument("kind", choices=["synthetic", "assembly", "heavyleaf"])
    generate.add_argument("--out", type=Path, required=True, help="output directory")
    generate.add_argument("--scale", default="small", help="dataset scale (tiny/small/medium/large)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--num-trees", type=int, default=None, help="synthetic only")
    generate.add_argument("--num-nodes", type=int, default=None, help="synthetic only")

    info = subparsers.add_parser("info", help="print tree statistics")
    info.add_argument("path", type=Path, help="a tree JSON file or a dataset directory")

    schedule = subparsers.add_parser(
        "schedule", help="schedule one tree file or sweep a dataset directory"
    )
    schedule.add_argument("path", type=Path, help="tree JSON file or dataset directory")
    schedule.add_argument(
        "--scheduler", default="MemBooking", choices=sorted(SCHEDULER_FACTORIES)
    )
    schedule.add_argument("--processors", type=int, default=8)
    schedule.add_argument(
        "--memory-factor",
        type=float,
        default=2.0,
        help="memory bound as a multiple of the minimum sequential memory",
    )
    schedule.add_argument(
        "--memory", type=float, default=None, help="absolute memory bound (overrides the factor)"
    )
    schedule.add_argument("--ao", default="memPO", choices=sorted(ORDER_FACTORIES))
    schedule.add_argument("--eo", default="memPO", choices=sorted(ORDER_FACTORIES))
    schedule.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes when PATH is a dataset directory (0 = one per CPU)",
    )
    schedule.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend for dataset directories "
        "(shared-memory = ship the dataset once as a zero-copy arena; "
        "batched = lane-batched in-process stepper)",
    )
    schedule.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    _add_native_flags(schedule)

    from .analysis.report import build_parser as _lint_parser  # local: keep CLI import light

    lint = subparsers.add_parser(
        "lint",
        parents=[_lint_parser()],
        add_help=False,
        help="run the static kernel-contract analyzer",
    )
    del lint

    figure = subparsers.add_parser("figure", help="reproduce a figure of the paper")
    figure.add_argument("figure_id", choices=sorted(FIGURES))
    figure.add_argument("--scale", default="small")
    figure.add_argument("--csv", type=Path, default=None, help="write the series to a CSV file")
    figure.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for the figure's sweep (0 = one per CPU, default 1)",
    )
    figure.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend (shared-memory = zero-copy arena transfer "
        "+ instance-granularity scheduling; batched = lane-batched in-process "
        "stepper with provable lane collapse)",
    )
    figure.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    figure.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory: sweeps already recorded there "
        "are loaded instead of re-simulated",
    )
    figure.add_argument(
        "--workload-cache-dir",
        type=Path,
        default=None,
        help="persistent workload-cache directory: generated datasets are saved "
        "once as TreeStore arenas and mmap-loaded on later runs",
    )
    figure.add_argument(
        "--no-workload-cache",
        action="store_true",
        help="ignore --workload-cache-dir and always regenerate the datasets",
    )
    figure.add_argument(
        "--dry-run",
        action="store_true",
        help="print the figure's assembled sweep plan (instance count, "
        "predicted cache hits, lane groups) and exit without simulating",
    )
    figure.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan spec, e.g. "
        '"seed=7;worker-crash:40;watchdog=5" (default: the REPRO_FAULTS '
        "environment variable; see repro.resilience)",
    )
    _add_native_flags(figure)

    from .experiments.suite import add_suite_arguments  # local: keep CLI import light

    suite = subparsers.add_parser(
        "suite",
        help="run the whole evaluation suite (all figures) and write a report",
    )
    add_suite_arguments(suite)

    return parser


def _add_native_flags(subparser: argparse.ArgumentParser) -> None:
    """Paired --native/--no-native flags (tri-state, default: REPRO_NATIVE)."""
    subparser.add_argument(
        "--native",
        action="store_true",
        dest="native",
        default=None,
        help="require the compiled C kernels (repro.native; error if they "
        "cannot be built)",
    )
    subparser.add_argument(
        "--no-native",
        action="store_false",
        dest="native",
        help="force the pure-Python kernels (default: the REPRO_NATIVE "
        "environment switch; unset = auto with silent fallback)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        kwargs = {}
        if args.num_trees is not None:
            kwargs["num_trees"] = args.num_trees
        if args.num_nodes is not None:
            kwargs["num_nodes"] = args.num_nodes
        trees, spec = synthetic_dataset(args.scale, seed=args.seed, **kwargs)
    elif args.kind == "heavyleaf":
        trees, spec = heavyleaf_dataset(args.scale, seed=args.seed)
    else:
        trees, spec = assembly_dataset(args.scale, seed=args.seed)
    save_dataset(
        trees,
        args.out,
        name=spec.name,
        metadata={"scale": spec.scale, "seed": spec.seed},
    )
    print(f"wrote {len(trees)} trees to {args.out}")
    return 0


def _iter_trees(path: Path):
    if path.is_dir():
        for tree in load_dataset(path):
            yield tree
    else:
        yield load_json(path)


def _cmd_info(args: argparse.Namespace) -> int:
    for tree in _iter_trees(args.path):
        stats = tree_stats(tree)
        order = minimum_memory_postorder(tree)
        minimum = sequential_peak_memory(tree, order)
        print(
            f"n={stats.n} height={stats.height} leaves={stats.num_leaves} "
            f"max_degree={stats.max_degree} total_work={stats.total_work:.4g} "
            f"critical_path={stats.critical_path:.4g} min_memory={minimum:.4g}"
        )
    return 0


def _cmd_schedule_dataset(args: argparse.Namespace) -> int:
    """Sweep every tree of a dataset directory (parallel with ``--jobs``)."""
    if args.memory is not None:
        raise SystemExit("--memory applies to a single tree; use --memory-factor on datasets")
    trees = list(load_dataset(args.path))
    if not trees:
        raise SystemExit(f"no trees found in {args.path}")
    config = SweepConfig(
        schedulers=(args.scheduler,),
        memory_factors=(args.memory_factor,),
        processors=(args.processors,),
        activation_order=args.ao,
        execution_order=args.eo,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        native=args.native,
    )
    records = run_sweep(trees, config)
    print(
        f"{'tree':>5} {'n':>7} {'makespan':>12} {'norm.':>7} {'peak mem':>12} "
        f"{'sched ms':>9}  status"
    )
    for record in records:
        status = "ok" if record["completed"] else f"FAILED ({record['failure_reason']})"
        print(
            f"{record['tree_index']:>5} {record['tree_size']:>7} "
            f"{record['makespan']:>12.6g} {record['normalized_makespan']:>7.3f} "
            f"{record['peak_memory']:>12.6g} {record['scheduling_seconds'] * 1e3:>9.2f}  {status}"
        )
    failures = sum(1 for record in records if not record["completed"])
    print(
        f"{len(records)} trees, {len(records) - failures} completed, {failures} failed "
        f"(scheduler={args.scheduler}, factor={args.memory_factor}, "
        f"p={args.processors}, jobs={args.jobs})"
    )
    return 1 if failures else 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.path.is_dir():
        return _cmd_schedule_dataset(args)
    tree: TaskTree = load_json(args.path)
    ao = make_order(tree, args.ao)
    eo = ao if args.eo == args.ao else make_order(tree, args.eo)
    minimum = sequential_peak_memory(tree, minimum_memory_postorder(tree))
    memory = args.memory if args.memory is not None else args.memory_factor * minimum
    scheduler = make_scheduler(args.scheduler)
    scheduler.native = args.native
    result = scheduler.schedule(tree, args.processors, memory, ao=ao, eo=eo)
    print(f"scheduler          : {result.scheduler}")
    print(f"tree size          : {result.tree_size}")
    print(f"processors         : {result.num_processors}")
    print(f"memory bound       : {memory:.6g} ({memory / minimum:.2f} x minimum)")
    if result.completed:
        print(f"makespan           : {result.makespan:.6g}")
        print(f"peak memory        : {result.peak_memory:.6g}")
        print(f"memory utilisation : {result.peak_memory / memory:.1%}")
        print(f"scheduling time    : {result.scheduling_seconds * 1e3:.2f} ms")
        return 0
    print(f"FAILED             : {result.failure_reason}")
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.report import run_lint

    return run_lint(args)


def _cmd_suite(args: argparse.Namespace) -> int:
    from .experiments.suite import run_from_args

    return run_from_args(args)


def _cmd_figure(args: argparse.Namespace) -> int:
    from .resilience.health import reset_run_health

    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    workload_cache = None
    if args.workload_cache_dir is not None and not args.no_workload_cache:
        workload_cache = WorkloadCache(args.workload_cache_dir)
    if args.dry_run:
        ctx = RunContext(
            scale=args.scale,
            jobs=args.jobs,
            backend=args.backend,
            batch_size=args.batch_size,
            native=args.native,
            fault_plan=args.faults,
            cache=cache if cache is not None else InMemoryRowCache(),
            workload_cache=workload_cache,
        )
        print(format_plan_report(plan_report([FIGURE_SPECS[args.figure_id]], ctx)))
        return 0
    health = reset_run_health()
    result = run_figure(
        args.figure_id,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        native=args.native,
        fault_plan=args.faults,
        cache=cache,
        workload_cache=workload_cache,
    )
    print(result.as_text())
    if args.csv is not None:
        write_series_csv(result.series, args.csv, x_label=result.x_label)
        print(f"series written to {args.csv}")
    if workload_cache is not None:
        print(f"workload cache: {workload_cache.stats()}")
    if health.any_activity():
        print(f"run health: {health.summary()}")
    return 0 if result.all_checks_pass else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``memtree`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "schedule": _cmd_schedule,
        "lint": _cmd_lint,
        "figure": _cmd_figure,
        "suite": _cmd_suite,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Pool/shm teardown already ran in the finally-blocks on the way up;
        # exit with the conventional SIGINT status, no traceback spew.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
