"""``memtree`` command line interface.

Eight sub-commands cover the typical workflows of the library:

``memtree generate``
    Generate a dataset (synthetic trees or the assembly-tree surrogate) and
    save it to a directory of JSON files.
``memtree info``
    Print the structural statistics of a tree file (or of every tree of a
    dataset directory).
``memtree schedule``
    Schedule one tree file — or sweep a whole dataset directory — with a
    chosen heuristic, memory factor and processor count, and print the
    outcome.  On a directory, ``--jobs N`` fans the trees out over ``N``
    worker processes (per-tree orders and minimum memory are computed once
    per tree, and the rows come back in deterministic dataset order).
``memtree lint``
    Run the static kernel-contract analyzer (:mod:`repro.analysis`) over the
    package (or given paths): compilable-subset purity of the registered hot
    kernels, plane dtype contracts, and the scalar/lane anti-drift rule.
    Exits nonzero on findings that are neither waived in source
    (``# kernel-ok: <rule>``) nor recorded in a committed baseline.
``memtree figure``
    Reproduce one of the paper's figures/tables and print its series, with
    an optional CSV export.  ``--jobs N`` parallelises the underlying sweep
    without changing the reported series; ``--cache-dir DIR`` keeps a
    persistent result cache (saved
    :class:`~repro.experiments.records.RecordTable` files keyed by dataset
    and sweep config), so re-running a figure at the same scale loads the
    recorded results instead of re-simulating; ``--workload-cache-dir DIR``
    does the same for the *generated datasets* (packed
    :class:`~repro.core.tree_store.TreeStore` arenas keyed by dataset,
    scale, seed and generator version, mmap-loaded as zero-copy views);
    ``--dry-run`` prints the figure's assembled
    :class:`~repro.experiments.plan.SweepPlan` (instance count, predicted
    cache hits, lane groups) without simulating anything.
``memtree suite``
    Run the whole evaluation suite (every figure, or ``--figures`` for a
    subset) and write per-figure text/CSV files plus ``summary.md`` and
    ``plan-stats.json``; overlapping figures share simulations through the
    instance-level result cache, and ``--dry-run`` prints the concatenated
    deduplicated plan.
``memtree serve``
    Run the resident scheduler service (:mod:`repro.service`): datasets
    loaded once into memory, per-tree contexts and caches kept warm, and
    ``schedule``/``sweep``/``status``/``load``/``evict`` queries answered
    over an ``AF_UNIX`` socket (``--socket PATH``) or localhost TCP
    (``--port N``).  Shuts down cleanly (exit 0) on SIGTERM/SIGINT.
``memtree client``
    Query a running daemon: ``ping``, ``status``, ``load``, ``evict``,
    ``sweep`` and ``shutdown`` actions.  ``memtree schedule --via ADDRESS``
    routes a single-tree schedule through the daemon the same way.

Both sweep commands take ``--backend`` to pick the execution strategy
(registered through :func:`repro.experiments.backends.register_backend`):
``serial``, ``process`` (one pickled tree per worker task),
``shared-memory``, which packs the dataset into a
:class:`~repro.core.tree_store.TreeStore` arena shipped once through
:mod:`multiprocessing.shared_memory` and schedules at instance granularity —
the right choice when a few huge trees must saturate many workers — or
``batched``, the lane engine of :mod:`repro.batch`: all instances of one
tree advance through one in-process stepper with provably identical lanes
collapsed to a single simulation (``--batch-size`` bounds the lanes per
batch; ``0`` = all instances of a tree).  The default ``auto`` keeps the
historical behaviour (serial for ``--jobs 1``, per-tree chunking
otherwise); the records are identical for every backend.

Examples
--------
::

    memtree generate synthetic --num-trees 5 --num-nodes 1000 --out trees/
    memtree info trees/tree_00000.json
    memtree schedule trees/tree_00000.json --scheduler MemBooking \\
            --processors 8 --memory-factor 2
    memtree schedule trees/ --scheduler MemBooking --memory-factor 2 --jobs 4
    memtree figure fig10 --scale tiny --jobs 4
    memtree lint --json lint-report.json
    memtree figure fig15 --scale tiny --jobs 2 --backend shared-memory
    memtree figure fig10 --scale tiny --dry-run
    memtree suite --scale tiny --out results/ --dry-run
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .core import load_dataset, load_json, save_dataset, tree_stats
from .core.task_tree import TaskTree
from .experiments import (
    FIGURE_SPECS,
    FIGURES,
    InMemoryRowCache,
    ResultCache,
    RunContext,
    SweepConfig,
    backends as _backends,
    format_plan_report,
    plan_report,
    run_figure,
    run_sweep,
    write_series_csv,
)
from .orders import ORDER_FACTORIES, minimum_memory_postorder, sequential_peak_memory
from .schedulers import SCHEDULER_FACTORIES
from .workloads import WorkloadCache, assembly_dataset, heavyleaf_dataset, synthetic_dataset

__all__ = ["main", "build_parser"]


def _jobs_count(value: str) -> int:
    """argparse type for ``--jobs``: a non-negative int (0 = one per CPU)."""
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the ``memtree`` command."""
    parser = argparse.ArgumentParser(
        prog="memtree",
        description="Dynamic memory-aware task-tree scheduling (IPDPS 2017 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"memtree {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a tree dataset")
    generate.add_argument("kind", choices=["synthetic", "assembly", "heavyleaf"])
    generate.add_argument("--out", type=Path, required=True, help="output directory")
    generate.add_argument("--scale", default="small", help="dataset scale (tiny/small/medium/large)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--num-trees", type=int, default=None, help="synthetic only")
    generate.add_argument("--num-nodes", type=int, default=None, help="synthetic only")

    info = subparsers.add_parser("info", help="print tree statistics")
    info.add_argument("path", type=Path, help="a tree JSON file or a dataset directory")

    schedule = subparsers.add_parser(
        "schedule", help="schedule one tree file or sweep a dataset directory"
    )
    schedule.add_argument("path", type=Path, help="tree JSON file or dataset directory")
    schedule.add_argument(
        "--scheduler", default="MemBooking", choices=sorted(SCHEDULER_FACTORIES)
    )
    schedule.add_argument("--processors", type=int, default=8)
    schedule.add_argument(
        "--memory-factor",
        type=float,
        default=2.0,
        help="memory bound as a multiple of the minimum sequential memory",
    )
    schedule.add_argument(
        "--memory", type=float, default=None, help="absolute memory bound (overrides the factor)"
    )
    schedule.add_argument("--ao", default="memPO", choices=sorted(ORDER_FACTORIES))
    schedule.add_argument("--eo", default="memPO", choices=sorted(ORDER_FACTORIES))
    schedule.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes when PATH is a dataset directory (0 = one per CPU)",
    )
    schedule.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend for dataset directories "
        "(shared-memory = ship the dataset once as a zero-copy arena; "
        "batched = lane-batched in-process stepper)",
    )
    schedule.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    schedule.add_argument(
        "--json",
        action="store_true",
        help="print the full schedule record as machine-readable JSON "
        "(single tree files; same serializer as the service wire)",
    )
    schedule.add_argument(
        "--via",
        default=None,
        metavar="ADDRESS",
        help="route the query through a running memtree serve daemon "
        "(socket path or host:port) instead of simulating in-process",
    )
    _add_native_flags(schedule)

    from .analysis.report import build_parser as _lint_parser  # local: keep CLI import light

    lint = subparsers.add_parser(
        "lint",
        parents=[_lint_parser()],
        add_help=False,
        help="run the static kernel-contract analyzer",
    )
    del lint

    figure = subparsers.add_parser("figure", help="reproduce a figure of the paper")
    figure.add_argument("figure_id", choices=sorted(FIGURES))
    figure.add_argument("--scale", default="small")
    figure.add_argument("--csv", type=Path, default=None, help="write the series to a CSV file")
    figure.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="worker processes for the figure's sweep (0 = one per CPU, default 1)",
    )
    figure.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend (shared-memory = zero-copy arena transfer "
        "+ instance-granularity scheduling; batched = lane-batched in-process "
        "stepper with provable lane collapse)",
    )
    figure.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    figure.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory: sweeps already recorded there "
        "are loaded instead of re-simulated",
    )
    figure.add_argument(
        "--workload-cache-dir",
        type=Path,
        default=None,
        help="persistent workload-cache directory: generated datasets are saved "
        "once as TreeStore arenas and mmap-loaded on later runs",
    )
    figure.add_argument(
        "--no-workload-cache",
        action="store_true",
        help="ignore --workload-cache-dir and always regenerate the datasets",
    )
    figure.add_argument(
        "--dry-run",
        action="store_true",
        help="print the figure's assembled sweep plan (instance count, "
        "predicted cache hits, lane groups) and exit without simulating",
    )
    figure.add_argument(
        "--json",
        action="store_true",
        help="with --dry-run: print the plan report as machine-readable "
        "JSON (same serializer as the service wire)",
    )
    figure.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan spec, e.g. "
        '"seed=7;worker-crash:40;watchdog=5" (default: the REPRO_FAULTS '
        "environment variable; see repro.resilience)",
    )
    _add_native_flags(figure)

    from .experiments.suite import add_suite_arguments  # local: keep CLI import light

    suite = subparsers.add_parser(
        "suite",
        help="run the whole evaluation suite (all figures) and write a report",
    )
    add_suite_arguments(suite)

    serve = subparsers.add_parser(
        "serve", help="run the resident scheduler service daemon"
    )
    serve.add_argument(
        "--socket", type=Path, default=None, help="AF_UNIX socket path to bind"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port to bind on --host (0 = pick an ephemeral port)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host (with --port)")
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory shared by every sweep request "
        "(default: a per-daemon in-memory row cache)",
    )
    serve.add_argument(
        "--workload-cache-dir",
        type=Path,
        default=None,
        help="persistent workload-cache directory: loaded datasets are saved "
        "once as TreeStore arenas and mmap-loaded on later daemon starts",
    )
    serve.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="KIND:SCALE[:SEED]",
        help="preload a dataset at startup, e.g. synthetic:tiny (repeatable; "
        "default seed: the dataset kind's canonical seed)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        help="seconds a connection may sit silent before it is dropped",
    )
    _add_native_flags(serve)

    client = subparsers.add_parser(
        "client", help="query a running memtree serve daemon"
    )
    client.add_argument("address", help="daemon address: socket path or host:port")
    client.add_argument(
        "action", choices=["ping", "status", "load", "evict", "sweep", "shutdown"]
    )
    client.add_argument(
        "--kind",
        default=None,
        choices=["synthetic", "assembly", "heavyleaf", "height"],
        help="dataset kind (load)",
    )
    client.add_argument("--scale", default="tiny", help="dataset scale (load)")
    client.add_argument("--seed", type=int, default=None, help="dataset seed (load)")
    client.add_argument("--name", default=None, help="dataset name (load/evict)")
    client.add_argument("--dataset", default=None, help="resident dataset name (sweep)")
    client.add_argument(
        "--schedulers",
        default="MemBooking",
        help="comma-separated scheduler list (sweep)",
    )
    client.add_argument(
        "--processors", default="8", help="comma-separated processor counts (sweep)"
    )
    client.add_argument(
        "--memory-factors",
        default="2.0",
        help="comma-separated memory factors (sweep)",
    )
    client.add_argument(
        "--rows",
        default=None,
        help="plan-row subset for sweep, e.g. 0-15 or 0,3,9 (default: full plan)",
    )
    client.add_argument("--ao", default="memPO", choices=sorted(ORDER_FACTORIES))
    client.add_argument("--eo", default="memPO", choices=sorted(ORDER_FACTORIES))
    client.add_argument(
        "--json",
        action="store_true",
        help="print sweep records as JSON instead of the summary table",
    )

    return parser


def _add_native_flags(subparser: argparse.ArgumentParser) -> None:
    """Paired --native/--no-native flags (tri-state, default: REPRO_NATIVE)."""
    subparser.add_argument(
        "--native",
        action="store_true",
        dest="native",
        default=None,
        help="require the compiled C kernels (repro.native; error if they "
        "cannot be built)",
    )
    subparser.add_argument(
        "--no-native",
        action="store_false",
        dest="native",
        help="force the pure-Python kernels (default: the REPRO_NATIVE "
        "environment switch; unset = auto with silent fallback)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        kwargs = {}
        if args.num_trees is not None:
            kwargs["num_trees"] = args.num_trees
        if args.num_nodes is not None:
            kwargs["num_nodes"] = args.num_nodes
        trees, spec = synthetic_dataset(args.scale, seed=args.seed, **kwargs)
    elif args.kind == "heavyleaf":
        trees, spec = heavyleaf_dataset(args.scale, seed=args.seed)
    else:
        trees, spec = assembly_dataset(args.scale, seed=args.seed)
    save_dataset(
        trees,
        args.out,
        name=spec.name,
        metadata={"scale": spec.scale, "seed": spec.seed},
    )
    print(f"wrote {len(trees)} trees to {args.out}")
    return 0


def _iter_trees(path: Path):
    if path.is_dir():
        for tree in load_dataset(path):
            yield tree
    else:
        yield load_json(path)


def _cmd_info(args: argparse.Namespace) -> int:
    for tree in _iter_trees(args.path):
        stats = tree_stats(tree)
        order = minimum_memory_postorder(tree)
        minimum = sequential_peak_memory(tree, order)
        print(
            f"n={stats.n} height={stats.height} leaves={stats.num_leaves} "
            f"max_degree={stats.max_degree} total_work={stats.total_work:.4g} "
            f"critical_path={stats.critical_path:.4g} min_memory={minimum:.4g}"
        )
    return 0


def _cmd_schedule_dataset(args: argparse.Namespace) -> int:
    """Sweep every tree of a dataset directory (parallel with ``--jobs``)."""
    if args.memory is not None:
        raise SystemExit("--memory applies to a single tree; use --memory-factor on datasets")
    trees = list(load_dataset(args.path))
    if not trees:
        raise SystemExit(f"no trees found in {args.path}")
    config = SweepConfig(
        schedulers=(args.scheduler,),
        memory_factors=(args.memory_factor,),
        processors=(args.processors,),
        activation_order=args.ao,
        execution_order=args.eo,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        native=args.native,
    )
    records = run_sweep(trees, config)
    print(
        f"{'tree':>5} {'n':>7} {'makespan':>12} {'norm.':>7} {'peak mem':>12} "
        f"{'sched ms':>9}  status"
    )
    for record in records:
        status = "ok" if record["completed"] else f"FAILED ({record['failure_reason']})"
        print(
            f"{record['tree_index']:>5} {record['tree_size']:>7} "
            f"{record['makespan']:>12.6g} {record['normalized_makespan']:>7.3f} "
            f"{record['peak_memory']:>12.6g} {record['scheduling_seconds'] * 1e3:>9.2f}  {status}"
        )
    failures = sum(1 for record in records if not record["completed"])
    print(
        f"{len(records)} trees, {len(records) - failures} completed, {failures} failed "
        f"(scheduler={args.scheduler}, factor={args.memory_factor}, "
        f"p={args.processors}, jobs={args.jobs})"
    )
    return 1 if failures else 0


def _schedule_request(args: argparse.Namespace, tree: TaskTree) -> dict:
    """The service-protocol ``schedule`` request the CLI args describe.

    The in-process path and ``--via`` hand the *same* request to the same
    handler (:meth:`repro.service.server.SchedulerService.schedule_record`),
    so local and remote answers cannot drift.
    """
    from .core.tree_io import to_dict

    request: dict = {
        "tree": to_dict(tree),
        "scheduler": args.scheduler,
        "processors": args.processors,
        "ao": args.ao,
        "eo": args.eo,
    }
    if args.memory is not None:
        request["memory"] = args.memory
    else:
        request["memory_factor"] = args.memory_factor
    if args.native is not None:
        request["native"] = args.native
    return request


def _print_schedule_record(record: dict) -> None:
    """The human-readable rendering of one schedule record."""
    memory = record["memory_limit"]
    print(f"scheduler          : {record['scheduler']}")
    print(f"tree size          : {record['tree_size']}")
    print(f"processors         : {record['num_processors']}")
    print(
        f"memory bound       : {memory:.6g} "
        f"({memory / record['minimum_memory']:.2f} x minimum)"
    )
    if record["completed"]:
        print(f"makespan           : {record['makespan']:.6g}")
        print(f"peak memory        : {record['peak_memory']:.6g}")
        print(f"memory utilisation : {record['peak_memory'] / memory:.1%}")
        print(f"scheduling time    : {record['scheduling_seconds'] * 1e3:.2f} ms")
    else:
        print(f"FAILED             : {record['failure_reason']}")


def _cmd_schedule(args: argparse.Namespace) -> int:
    if args.path.is_dir():
        if args.via is not None:
            raise SystemExit("--via routes single tree files; sweep datasets locally")
        return _cmd_schedule_dataset(args)
    tree: TaskTree = load_json(args.path)
    request = _schedule_request(args, tree)
    if args.via is not None:
        from .service import ServiceClient

        with ServiceClient(args.via) as service_client:
            record = service_client.schedule(**request)
    else:
        from .service import SchedulerService

        record = SchedulerService(native=args.native).schedule_record(request)
    if args.json:
        from .service.protocol import payload_text

        print(payload_text(record))
    else:
        _print_schedule_record(record)
    return 0 if record["completed"] else 1


def _parse_plan_rows(spec: str) -> list[int]:
    """``"0,3,5-9"`` -> ``[0, 3, 5, 6, 7, 8, 9]`` (ranges inclusive)."""
    rows: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part:
            start, _, stop = part.partition("-")
            rows.extend(range(int(start), int(stop) + 1))
        else:
            rows.append(int(part))
    return rows


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import SchedulerDaemon, SchedulerService

    if (args.socket is None) == (args.port is None):
        raise SystemExit("serve needs exactly one of --socket PATH or --port N")
    service = SchedulerService(
        cache_dir=args.cache_dir,
        workload_cache_dir=args.workload_cache_dir,
        native=args.native,
    )
    for spec in args.load:
        kind, _, rest = spec.partition(":")
        scale, _, seed = rest.partition(":")
        name, _ = service.load_dataset(
            kind, scale or "tiny", int(seed) if seed else None
        )
        print(f"loaded {name}: {len(service.datasets[name].trees)} trees")
    daemon = SchedulerDaemon(
        service,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
    )
    daemon.start()
    print(f"memtree service listening on {daemon.address}", flush=True)
    if threading.current_thread() is threading.main_thread():
        # SIGTERM/SIGINT both mean "shut down cleanly, exit 0" for a daemon.
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: daemon.request_stop())
    daemon.serve_forever()
    print("memtree service shut down cleanly")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service import RemoteError, ServiceClient
    from .service.protocol import ProtocolError, payload_text

    try:
        with ServiceClient(args.address) as service_client:
            if args.action == "ping":
                print(payload_text(service_client.ping()))
            elif args.action == "status":
                print(payload_text(service_client.status()))
            elif args.action == "shutdown":
                print(payload_text(service_client.shutdown_server()))
            elif args.action == "load":
                if args.kind is None:
                    raise SystemExit("client load needs --kind")
                print(
                    payload_text(
                        service_client.load(
                            args.kind, args.scale, seed=args.seed, name=args.name
                        )
                    )
                )
            elif args.action == "evict":
                if args.name is None:
                    raise SystemExit("client evict needs --name")
                print(payload_text(service_client.evict(args.name)))
            else:  # sweep
                if args.dataset is None:
                    raise SystemExit("client sweep needs --dataset")
                records, stats = service_client.sweep(
                    args.dataset,
                    schedulers=[s for s in args.schedulers.split(",") if s],
                    processors=[int(p) for p in args.processors.split(",") if p],
                    memory_factors=[
                        float(f) for f in args.memory_factors.split(",") if f
                    ],
                    rows=_parse_plan_rows(args.rows) if args.rows else None,
                    ao=args.ao,
                    eo=args.eo,
                )
                if args.json:
                    print(payload_text({"records": records, "stats": stats}))
                else:
                    for record in records:
                        status = (
                            "ok"
                            if record["completed"]
                            else f"FAILED ({record['failure_reason']})"
                        )
                        print(
                            f"tree {record['tree_index']:>4} "
                            f"{record['scheduler']:>16} p={record['num_processors']:<3} "
                            f"f={record['memory_factor']:<5g} "
                            f"makespan={record['makespan']:<12.6g} {status}"
                        )
                    print(payload_text(stats))
    except RemoteError as exc:
        print(f"daemon error: {exc}", file=sys.stderr)
        return 1
    except (ProtocolError, ConnectionError, OSError) as exc:
        print(f"cannot reach daemon at {args.address}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.report import run_lint

    return run_lint(args)


def _cmd_suite(args: argparse.Namespace) -> int:
    from .experiments.suite import run_from_args

    return run_from_args(args)


def _cmd_figure(args: argparse.Namespace) -> int:
    from .resilience.health import reset_run_health

    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    workload_cache = None
    if args.workload_cache_dir is not None and not args.no_workload_cache:
        workload_cache = WorkloadCache(args.workload_cache_dir)
    if args.dry_run:
        ctx = RunContext(
            scale=args.scale,
            jobs=args.jobs,
            backend=args.backend,
            batch_size=args.batch_size,
            native=args.native,
            fault_plan=args.faults,
            cache=cache if cache is not None else InMemoryRowCache(),
            workload_cache=workload_cache,
        )
        report = plan_report([FIGURE_SPECS[args.figure_id]], ctx)
        if args.json:
            from .service.protocol import payload_text

            print(payload_text(report))
        else:
            print(format_plan_report(report))
        return 0
    health = reset_run_health()
    result = run_figure(
        args.figure_id,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        native=args.native,
        fault_plan=args.faults,
        cache=cache,
        workload_cache=workload_cache,
    )
    print(result.as_text())
    if args.csv is not None:
        write_series_csv(result.series, args.csv, x_label=result.x_label)
        print(f"series written to {args.csv}")
    if workload_cache is not None:
        print(f"workload cache: {workload_cache.stats()}")
    if health.any_activity():
        print(f"run health: {health.summary()}")
    return 0 if result.all_checks_pass else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``memtree`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "schedule": _cmd_schedule,
        "lint": _cmd_lint,
        "figure": _cmd_figure,
        "suite": _cmd_suite,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Pool/shm teardown already ran in the finally-blocks on the way up;
        # exit with the conventional SIGINT status, no traceback spew.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
