#!/usr/bin/env python3
"""Memory-pressure study on synthetic trees (a miniature Figure 10/11).

Generates a batch of Section 7.1 synthetic trees, sweeps the memory bound
from the minimum sequential memory to 10x that value, and prints the average
normalised makespan of the three heuristics plus the speedup of MemBooking
over Activation.

Run with::

    python examples/memory_pressure_study.py [num_trees] [num_nodes]
"""

from __future__ import annotations

import sys

from repro.experiments import SweepConfig, format_series_table, run_sweep, series_over, speedup_records
from repro.experiments.metrics import mean
from repro.workloads import SyntheticTreeConfig, synthetic_trees


def main() -> None:
    num_trees = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    num_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 500

    trees = synthetic_trees(num_trees, SyntheticTreeConfig(num_nodes=num_nodes), rng=42)
    config = SweepConfig(memory_factors=(1.0, 1.5, 2.0, 3.0, 5.0, 10.0), processors=(8,))
    print(f"running {len(trees)} synthetic trees of {num_nodes} nodes on p=8 ...")
    records = run_sweep(trees, config)

    # The mapping `where` keeps the aggregation vectorised over the
    # RecordTable columns (a callable filter would fall back to a row loop).
    series = {
        scheduler: series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            where={"scheduler": scheduler},
            min_completion=config.min_completion_fraction,
        )
        for scheduler in config.schedulers
    }
    print()
    print(format_series_table(series, x_label="memory factor",
                              title="average makespan / lower bound"))

    speedups = speedup_records(records)
    speedup_series = {
        "speedup (Activation / MemBooking)": [
            (factor, mean(s["speedup"] for s in speedups if s["memory_factor"] == factor))
            for factor in config.memory_factors
        ]
    }
    print()
    print(format_series_table(speedup_series, x_label="memory factor"))
    print()
    print("the gain concentrates where memory is scarce (factors 1-3) and")
    print("vanishes once every heuristic can activate the whole tree at once.")


if __name__ == "__main__":
    main()
