#!/usr/bin/env python3
"""Multifrontal sparse factorization: schedule a real assembly tree.

This example follows the paper's motivating application (Section 1): the
task graph of a multifrontal sparse factorization is a tree whose nodes are
dense frontal matrices.  We

1. build a sparse matrix (a 2-D Poisson problem on a regular grid),
2. reorder it with geometric nested dissection,
3. run the symbolic analysis (elimination tree, column counts, supernode
   amalgamation) to obtain the assembly tree with realistic data sizes and
   flop counts,
4. schedule that tree on 8 processors under increasingly tight memory
   bounds and compare Activation with MemBooking.

Run with::

    python examples/sparse_factorization.py [grid_size]
"""

from __future__ import annotations

import sys

from repro import (
    ActivationScheduler,
    MemBookingScheduler,
    combined_lower_bound,
    minimum_memory_postorder,
    sequential_peak_memory,
    tree_stats,
)
from repro.workloads import (
    assembly_tree_from_matrix,
    grid_laplacian_2d,
    nested_dissection_2d,
)


def main() -> None:
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    num_processors = 8

    matrix = grid_laplacian_2d(grid, grid)
    permutation = nested_dissection_2d(grid, grid)
    tree = assembly_tree_from_matrix(matrix, permutation=permutation, relax_columns=2)

    stats = tree_stats(tree)
    print(f"grid {grid}x{grid} -> {matrix.shape[0]} unknowns")
    print(
        f"assembly tree: {stats.n} fronts, height {stats.height}, "
        f"{stats.num_leaves} leaves, max degree {stats.max_degree}"
    )
    print(f"total factorization work: {stats.total_work:.3e} (scaled flops)")
    print()

    order = minimum_memory_postorder(tree)
    minimum_memory = sequential_peak_memory(tree, order)
    print(f"minimum sequential memory: {minimum_memory / 1e6:.2f} MB-equivalent")
    print()
    print(f"{'memory factor':>13} | {'Activation':>12} {'MemBooking':>12} | {'speedup':>8}")
    print("-" * 56)
    for factor in (1.0, 1.25, 1.5, 2.0, 3.0, 5.0):
        memory = factor * minimum_memory
        bound = combined_lower_bound(tree, num_processors, memory)
        activation = ActivationScheduler().schedule(
            tree, num_processors, memory, ao=order, eo=order
        )
        membooking = MemBookingScheduler().schedule(
            tree, num_processors, memory, ao=order, eo=order
        )
        act = activation.makespan / bound if activation.completed else float("nan")
        mb = membooking.makespan / bound if membooking.completed else float("nan")
        speedup = (
            activation.makespan / membooking.makespan
            if activation.completed and membooking.completed
            else float("nan")
        )
        print(f"{factor:>13.2f} | {act:>12.3f} {mb:>12.3f} | {speedup:>8.2f}")
    print()
    print("values are makespans normalised by the lower bound; the speedup is")
    print("Activation / MemBooking (the paper reports 1.25-1.45 on average at 2x).")


if __name__ == "__main__":
    main()
