#!/usr/bin/env python3
"""Quickstart: schedule a small task tree under a memory bound.

This example builds a tiny task tree by hand, computes the memory-minimising
postorder, and compares the paper's three heuristics (Activation,
MemBookingRedTree, MemBooking) on 4 processors with a memory bound equal to
1.5x the minimum sequential memory.

Run with::

    python examples/quickstart.py

Hacking on the schedulers themselves?  The hot kernels are held to a
restricted, compilable subset of Python by the static contract analyzer —
run ``memtree lint`` (or ``python -m repro.analysis``) before sending a
change, and see CONTRIBUTING.md for what the subset allows and why.
"""

from __future__ import annotations

from repro import (
    ActivationScheduler,
    MemBookingRedTreeScheduler,
    MemBookingScheduler,
    TaskTree,
    combined_lower_bound,
    minimum_memory_postorder,
    sequential_peak_memory,
    validate_schedule,
)


def build_tree() -> TaskTree:
    """A small elimination-tree-like instance.

    Two branches of heavy leaves feed intermediate reductions which meet at
    the root; every task also needs some temporary (execution) data.
    """
    #          10 (root)
    #         /  \
    #        8    9
    #       / \  / \
    #      0..3  4..7   (leaves)
    parent = [8, 8, 8, 8, 9, 9, 9, 9, 10, 10, -1]
    fout = [6, 6, 6, 6, 5, 5, 5, 5, 4, 4, 2]  # output data (e.g. MB)
    nexec = [2, 2, 2, 2, 2, 2, 2, 2, 8, 8, 10]  # temporary data while running
    ptime = [3, 3, 3, 3, 2, 2, 2, 2, 5, 5, 4]  # processing times (e.g. s)
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime)


def main() -> None:
    tree = build_tree()
    num_processors = 4

    # The activation order: Liu's memory-minimising postorder.  Its peak is
    # the smallest memory in which the tree can be processed sequentially
    # with a postorder traversal — the natural unit for memory bounds.
    order = minimum_memory_postorder(tree)
    minimum_memory = sequential_peak_memory(tree, order)
    memory_limit = 1.5 * minimum_memory
    print(f"tree with {tree.n} tasks, total work {tree.total_work:.0f}")
    print(f"minimum sequential memory (memPO peak): {minimum_memory:.0f}")
    print(f"memory bound used here               : {memory_limit:.0f}")
    print(f"makespan lower bound                 : "
          f"{combined_lower_bound(tree, num_processors, memory_limit):.2f}")
    print()

    schedulers = [ActivationScheduler(), MemBookingRedTreeScheduler(), MemBookingScheduler()]
    print(f"{'heuristic':<20} {'makespan':>9} {'peak mem':>9} {'mem used':>9}")
    for scheduler in schedulers:
        result = scheduler.schedule(tree, num_processors, memory_limit, ao=order, eo=order)
        if not result.completed:
            print(f"{scheduler.name:<20} {'FAILED':>9}  ({result.failure_reason})")
            continue
        # Every produced schedule can be checked against the model.
        validate_schedule(tree, result).raise_if_invalid()
        print(
            f"{scheduler.name:<20} {result.makespan:>9.2f} {result.peak_memory:>9.0f} "
            f"{result.peak_memory / memory_limit:>8.0%}"
        )

    print()
    print("MemBooking reuses the memory freed by finished descendants, so it can")
    print("activate both branches at once where Activation books too much and")
    print("serialises them.")
    print()
    print("To compare the heuristics over a whole dataset, use the sweep engine:")
    print("  from repro.experiments import run_sweep")
    print("  records = run_sweep(trees, jobs=4)   # fan out over 4 processes")
    print("(or `memtree schedule trees/ --jobs 4` / `memtree figure fig2 --jobs 4`).")
    print("Per-tree orders and minimum memory are computed once and shared by every")
    print("run on the tree, and the records are identical for any worker count.")
    print()
    print("Execution backends (records are byte-identical whichever you pick):")
    print("  backend          when to use")
    print("  -------------    ------------------------------------------------")
    print("  auto (default)   serial for --jobs 1, per-tree workers otherwise")
    print("  serial           debugging / the canonical reference order")
    print("  process          many similar trees, a few worker processes")
    print("  shared-memory    few (or huge) trees that must saturate many")
    print("                   workers: the dataset ships once as a zero-copy")
    print("                   TreeStore arena, work items are ~45-byte tuples")
    print("  batched          big per-tree (p x memory-factor) grids on one")
    print("                   core: all instances of a tree run through one")
    print("                   lane engine that detects provably identical")
    print("                   lanes (saturated p-axis, generous factor tail)")
    print("                   and simulates each distinct schedule once")
    print("  records = run_sweep(trees, jobs=4, backend='shared-memory')")
    print("  records = run_sweep(trees, backend='batched')")
    print("(or `memtree figure fig2 --backend batched`; `--batch-size` caps the")
    print("lanes per batch, 0 = every instance of a tree in one batch).")
    print()
    print("run_sweep returns a columnar RecordTable (one typed NumPy column per")
    print("record field; iterate it for plain dicts, `table.column(name)` for")
    print("vectorised post-processing, `table.save/load` for an mmap-able file).")
    print("Figures and the suite accept a persistent result cache built on it:")
    print("  python -m repro.experiments.suite --scale tiny   # second run: cache hits")
    print("  memtree figure fig2 --cache-dir results-cache/")
    print()
    print("Generated datasets are cached the same way: the suite keeps a workload")
    print("cache of packed TreeStore arenas under <out>/.workload-cache, keyed by")
    print("(dataset, scale, seed, generator version), and mmap-loads them on later")
    print("figures instead of regenerating (--no-workload-cache disables it;")
    print("`memtree figure fig2 --workload-cache-dir trees-cache/` on the CLI).")
    print()
    print("If a C compiler is available, the hot event loops run through compiled")
    print("kernels (built once into ~/.cache/memtree-native, byte-identical")
    print("records): this happens automatically, `memtree figure fig15 --native`")
    print("makes it mandatory (error instead of silent Python fallback) and")
    print("`--no-native` / REPRO_NATIVE=0 force the pure-Python kernels.")


if __name__ == "__main__":
    main()
