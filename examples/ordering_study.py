#!/usr/bin/env python3
"""Activation/execution order study (a miniature Figure 8/14).

The MemBooking heuristic takes two orders: the activation order AO (which
must be a topological order and drives the memory bookings) and the execution
order EO (an arbitrary priority used to pick among ready tasks).  This
example compares the combinations studied in Section 7.3.1 of the paper:

* memPO  — Liu's memory-minimising postorder,
* perfPO — a postorder favouring subtrees with long critical paths,
* OptSeq — Liu's optimal (non-postorder) sequential traversal,
* CP     — critical-path (bottom-level) priority, as an execution order.

Run with::

    python examples/ordering_study.py [num_trees] [num_nodes]
"""

from __future__ import annotations

import sys

from repro import MemBookingScheduler, make_order, sequential_peak_memory
from repro.orders import minimum_memory_postorder
from repro.workloads import SyntheticTreeConfig, synthetic_trees

COMBINATIONS = [
    ("memPO", "memPO"),
    ("memPO", "CP"),
    ("OptSeq", "CP"),
    ("OptSeq", "OptSeq"),
    ("perfPO", "CP"),
    ("perfPO", "perfPO"),
]


def main() -> None:
    num_trees = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    num_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 400
    memory_factor = 2.0
    num_processors = 8

    trees = synthetic_trees(num_trees, SyntheticTreeConfig(num_nodes=num_nodes), rng=7)
    print(
        f"{len(trees)} synthetic trees of {num_nodes} nodes, p={num_processors}, "
        f"memory = {memory_factor} x minimum\n"
    )
    print(f"{'AO/EO':<18} {'avg makespan':>14} {'vs memPO/memPO':>15}")

    reference = None
    for ao_name, eo_name in COMBINATIONS:
        total = 0.0
        for tree in trees:
            ao = make_order(tree, ao_name)
            eo = make_order(tree, eo_name)
            minimum = sequential_peak_memory(tree, minimum_memory_postorder(tree))
            result = MemBookingScheduler().schedule(
                tree, num_processors, memory_factor * minimum, ao=ao, eo=eo
            )
            assert result.completed, result.failure_reason
            total += result.makespan
        average = total / len(trees)
        if reference is None:
            reference = average
        print(f"{ao_name + '/' + eo_name:<18} {average:>14.1f} {average / reference:>14.3f}x")

    print()
    print("as in the paper, using CP as the execution order gives a small but")
    print("consistent improvement, while the choice of the activation order has")
    print("little effect — far less than switching between scheduling heuristics.")


if __name__ == "__main__":
    main()
