#!/usr/bin/env python3
"""Scheduling-overhead study (a miniature Figure 5/6/13).

Measures the wall-clock time the heuristics spend taking scheduling
decisions (activations, memory bookings, task selection) as the tree size
and the tree height grow, and reports the per-node overhead.  The paper's C
implementation stays below 1 ms per node even on trees of height 1e5; the
pure-Python reproduction is slower in absolute terms but shows the same
scaling behaviour (linear in n, with an additional height-driven term for
the memory re-dispatch walks).

Run with::

    python examples/runtime_overhead.py
"""

from __future__ import annotations

from repro import ActivationScheduler, MemBookingScheduler, minimum_memory_postorder
from repro.core.tree_metrics import height
from repro.orders import sequential_peak_memory
from repro.workloads import SyntheticTreeConfig, families, synthetic_tree


def measure(tree, scheduler) -> tuple[float, float]:
    order = minimum_memory_postorder(tree)
    memory = 2.0 * sequential_peak_memory(tree, order)
    result = scheduler.schedule(tree, 8, memory, ao=order, eo=order)
    assert result.completed
    return result.scheduling_seconds, result.scheduling_seconds / tree.n


def main() -> None:
    print("-- scheduling time vs tree size (synthetic trees) --")
    print(f"{'n':>8} {'Activation [s]':>15} {'MemBooking [s]':>15} {'MemBooking [us/node]':>22}")
    for size in (200, 500, 1000, 2000, 5000):
        tree = synthetic_tree(SyntheticTreeConfig(num_nodes=size), rng=1)
        act_total, _ = measure(tree, ActivationScheduler())
        mb_total, mb_per_node = measure(tree, MemBookingScheduler())
        print(f"{size:>8} {act_total:>15.4f} {mb_total:>15.4f} {mb_per_node * 1e6:>22.1f}")

    print()
    print("-- per-node overhead vs tree height (spines with small subtrees) --")
    print(f"{'height':>8} {'n':>8} {'MemBooking [us/node]':>22}")
    for spine in (100, 400, 1600, 6400):
        tree = families.spine_with_subtrees(
            spine, subtree_arity=2, subtree_depth=1, fout=4.0, nexec=1.0, ptime=2.0
        )
        _, per_node = measure(tree, MemBookingScheduler())
        print(f"{height(tree):>8} {tree.n:>8} {per_node * 1e6:>22.1f}")

    print()
    print("deep trees pay the O(H) memory re-dispatch walks (the nH term of")
    print("Theorem 2), which is why the per-node overhead grows with the height.")


if __name__ == "__main__":
    main()
