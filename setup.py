"""Setup shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on minimal offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package
available).  In that situation install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
